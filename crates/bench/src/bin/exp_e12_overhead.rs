//! E12 — observability overhead of the post-mortem layer.
//!
//! Three instrumentation levels around the same no-verify full-budget
//! embed at `n = 8` and `n = 9` (warmed oracle, serial pool so the
//! measurement is single-threaded and stable):
//!
//! * `off` — flight recorder disabled (the production default);
//! * `flightrec` — flight recorder enabled (span open/close + counter
//!   events into the lock-free ring);
//! * `profile` — span capture active (what `star-rings profile` costs).
//!
//! The acceptance criterion is flight-recorder overhead <= 2% of median
//! embed wall time at `n = 9`; the table records the measured ratio. A
//! second table reports the per-phase split of one profiled `n = 9`
//! embed — the data behind the sample flamegraph in EXPERIMENTS.md.

use std::time::Instant;

use star_bench::Table;
use star_fault::gen;
use star_obs::flightrec;
use star_perm::Parity;
use star_ring::{embed_with_options, oracle, EmbedOptions};

const SAMPLES: usize = 25;

fn no_verify() -> EmbedOptions {
    EmbedOptions {
        verify: false,
        ..Default::default()
    }
}

fn one_embed_ns(n: usize, faults: &star_fault::FaultSet) -> u64 {
    let t0 = Instant::now();
    let ring = embed_with_options(n, faults, &no_verify()).unwrap();
    assert!(!ring.is_empty());
    t0.elapsed().as_nanos() as u64
}

fn median(mut wall: Vec<u64>) -> u64 {
    wall.sort_unstable();
    wall[wall.len() / 2]
}

fn main() {
    star_bench::run_experiment("e12_overhead", run);
}

fn run() {
    oracle::warm();
    star_pool::set_threads(1);
    let mut t = Table::new(
        "E12: flight-recorder / profiler overhead on the full-budget embed",
        &["n", "mode", "median", "vs off", "events recorded"],
    );
    for n in [8usize, 9] {
        let faults = gen::worst_case_same_partite(n, n - 3, Parity::Even, 42).unwrap();
        // Warm-up so allocator and branch state settle before any mode.
        for _ in 0..3 {
            let _ = one_embed_ns(n, &faults);
        }

        // The three modes are interleaved per sample (off, flightrec,
        // profile, repeat) so slow drift in machine load hits all three
        // equally instead of biasing whichever block ran last.
        let mut off = Vec::with_capacity(SAMPLES);
        let mut on = Vec::with_capacity(SAMPLES);
        let mut prof = Vec::with_capacity(SAMPLES);
        let mut events = 0u64;
        let mut spans = 0usize;
        for _ in 0..SAMPLES {
            flightrec::disable();
            off.push(one_embed_ns(n, &faults));

            flightrec::enable();
            let rec0 = flightrec::recorded_total();
            on.push(one_embed_ns(n, &faults));
            events += flightrec::recorded_total() - rec0;
            flightrec::disable();
            let _ = flightrec::drain();

            let cap = star_obs::capture();
            prof.push(one_embed_ns(n, &faults));
            spans = cap.finish().len();
        }
        // Overhead ratio = median of per-round on/off ratios: each round's
        // pair ran back-to-back, so the ratio is drift-free even when the
        // absolute medians wander by several percent.
        let ratio = |xs: &[u64], base: &[u64]| {
            let mut rs: Vec<f64> = xs
                .iter()
                .zip(base)
                .map(|(&x, &b)| x as f64 / b as f64)
                .collect();
            rs.sort_by(|a, b| a.total_cmp(b));
            rs[rs.len() / 2]
        };
        let on_ratio = ratio(&on, &off);
        let prof_ratio = ratio(&prof, &off);
        let (off_ns, on_ns, prof_ns) = (median(off), median(on), median(prof));
        t.row(&[
            n.to_string(),
            "off".to_string(),
            format!("{:.3} ms", off_ns as f64 / 1e6),
            "1.000x".to_string(),
            "-".to_string(),
        ]);
        t.row(&[
            n.to_string(),
            "flightrec".to_string(),
            format!("{:.3} ms", on_ns as f64 / 1e6),
            format!("{on_ratio:.3}x"),
            format!("{} / embed", events as usize / SAMPLES),
        ]);
        t.row(&[
            n.to_string(),
            "profile".to_string(),
            format!("{:.3} ms", prof_ns as f64 / 1e6),
            format!("{prof_ratio:.3}x"),
            format!("{spans} spans"),
        ]);

        if n == 9 {
            println!(
                "\nE12 acceptance: flight-recorder overhead at n=9 is {:+.2}% (budget 2%)",
                100.0 * (on_ratio - 1.0)
            );
            // Per-phase attribution of one profiled embed — the collapsed
            // stacks behind the EXPERIMENTS.md sample flamegraph.
            let cap = star_obs::capture();
            let faults = gen::worst_case_same_partite(9, 6, Parity::Even, 42).unwrap();
            embed_with_options(9, &faults, &no_verify()).unwrap();
            let profile = star_obs::Profile::from_spans(&cap.finish());
            println!("\ncollapsed stacks of one profiled n=9 embed:");
            print!("{}", profile.collapsed());
        }
    }
    star_pool::set_threads(0);
    t.finish("e12_overhead");
}
