//! `bench-diff` — compares two perf baselines and gates on regressions.
//!
//! ```text
//! bench-diff <base.json> <current.json> [--threshold PCT] [--warn-only]
//! ```
//!
//! Exits nonzero when any case's median wall time regressed by more than
//! the threshold (default 10%). `--warn-only` prints the same report but
//! always exits 0 — the PR-gate mode; nightly runs omit it and hard-fail.

use std::process::ExitCode;

use star_bench::baseline::{diff, Baseline, DEFAULT_THRESHOLD};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut warn_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(p) if p > 0.0 => p / 100.0,
                    _ => return fail("--threshold needs a positive percentage"),
                };
            }
            "--warn-only" => warn_only = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-diff <base.json> <current.json> [--threshold PCT] [--warn-only]"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_string()),
        }
        i += 1;
    }
    let [base_path, cur_path] = files.as_slice() else {
        return fail("expected exactly two baseline files (base, current)");
    };
    let base = match load(base_path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let cur = match load(cur_path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };

    let lines = diff(&base, &cur, threshold);
    let mut regressions = 0usize;
    println!(
        "{:<24} {:>14} {:>14} {:>9}  verdict",
        "case", "base median", "cur median", "delta"
    );
    for l in &lines {
        let (base_s, cur_s) = (fmt_opt_ns(l.base_median_ns), fmt_opt_ns(l.cur_median_ns));
        let delta_s = l
            .median_delta
            .map(|d| format!("{:+.1}%", 100.0 * d))
            .unwrap_or_else(|| "-".to_string());
        let verdict = match (l.regressed, l.base_median_ns, l.cur_median_ns) {
            (true, ..) => {
                regressions += 1;
                "REGRESSED"
            }
            (false, None, _) => "new",
            (false, _, None) => "removed",
            _ => "ok",
        };
        println!(
            "{:<24} {base_s:>14} {cur_s:>14} {delta_s:>9}  {verdict}",
            l.name
        );
    }
    if regressions > 0 {
        eprintln!(
            "bench-diff: {regressions} case(s) regressed beyond {:.0}%{}",
            100.0 * threshold,
            if warn_only {
                " (warn-only: not failing)"
            } else {
                ""
            }
        );
        if !warn_only {
            return ExitCode::FAILURE;
        }
    } else {
        println!(
            "bench-diff: no median regression beyond {:.0}%",
            100.0 * threshold
        );
    }
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Baseline::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn fmt_opt_ns(ns: Option<u64>) -> String {
    match ns {
        Some(v) => format!("{:.3} ms", v as f64 / 1e6),
        None => "-".to_string(),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
