//! E7 — the motivation: on a faulty machine, a longer dilation-1 ring means
//! more usable processors at the same per-hop cost. Ring workloads on
//! `S_7` with the full fault budget, under three mappings.

use star_bench::Table;
use star_fault::gen;
use star_sim::run::{simulate, MappingKind};
use star_sim::workload::{Gossip, PipelineReduce, TokenRing, Workload};

fn main() {
    star_bench::run_experiment("e7_simulation", run);
}

fn run() {
    let n = 7;
    let fv = n - 3;
    let faults = gen::random_vertex_faults(n, fv, 11).unwrap();
    let token = TokenRing { laps: 4 };
    let workloads: Vec<&dyn Workload> = vec![&token, &PipelineReduce, &Gossip];
    let mappings = [
        ("paper embedding", MappingKind::EmbeddedOptimal),
        ("tseng embedding", MappingKind::EmbeddedBaseline),
        ("naive rank ring", MappingKind::NaiveByRank),
    ];

    let mut table = Table::new(
        "E7: ring workloads on faulty S_7 (|Fv| = 4) under three mappings",
        &[
            "workload",
            "mapping",
            "slots",
            "dilation",
            "rounds",
            "link traversals",
            "work/traversal",
        ],
    );
    for w in &workloads {
        for (label, kind) in mappings {
            let report = simulate(n, &faults, kind, *w).expect("simulation runs");
            table.row(&[
                report.workload.to_string(),
                label.to_string(),
                report.slots.to_string(),
                report.dilation.to_string(),
                report.usage.rounds.to_string(),
                report.usage.link_traversals.to_string(),
                format!("{:.3}", report.work_per_traversal()),
            ]);
        }
    }
    table.finish("e7_simulation");

    // Latency view: ring pipelines vs broadcast trees on the same machine.
    use star_sim::broadcast::{ring_broadcast_rounds, BroadcastTree};
    use star_sim::network::FaultyStarNetwork;
    let net = FaultyStarNetwork::new(n, faults.clone());
    let root = star_perm::Perm::identity(n);
    let tree = BroadcastTree::build(&net, &root);
    let ring_len = star_ring::embed_longest_ring(n, &faults).unwrap().len();
    let mut t2 = Table::new(
        "E7b: one-to-all broadcast latency — embedded ring vs BFS tree",
        &["mechanism", "reaches", "rounds"],
    );
    t2.row(&[
        "embedded ring (bidirectional)".to_string(),
        ring_len.to_string(),
        ring_broadcast_rounds(ring_len).to_string(),
    ]);
    t2.row(&[
        "BFS broadcast tree".to_string(),
        tree.reached().to_string(),
        tree.rounds().to_string(),
    ]);
    t2.finish("e7b_broadcast");

    println!(
        "\nReading: the paper's embedding keeps {} more processors than the\n\
         Tseng baseline at identical dilation 1, while the naive mapping\n\
         pays multi-hop routes for every logical step.",
        2 * fv
    );
}
