//! Runs every experiment binary in sequence — the one-command full
//! reproduction (`cargo run --release -p star-bench --bin exp_all`).

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_e1_ring_length",
    "exp_e2_optimality",
    "exp_e3_baselines",
    "exp_e4_scaling",
    "exp_e5_edge_faults",
    "exp_e6_mixed",
    "exp_e7_simulation",
    "exp_e8_resilience",
    "exp_e9_frontier",
    "exp_a1_ablation",
];

fn main() {
    star_bench::run_experiment("all", run);
}

fn run() {
    // The sibling binaries live next to this one.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("binary directory");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n######## {exp} ########");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            failures.push(*exp);
        }
    }
    println!();
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
