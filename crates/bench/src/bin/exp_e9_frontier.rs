//! E9 (extension) — the empirical frontier beyond the theorem.
//!
//! The paper guarantees `n! - 2|F_v|` only for `|F_v| <= n-3`. How far do
//! the implementations actually stretch?
//!
//! * vertex faults: the maintained ring keeps absorbing interior faults
//!   locally — measure the success rate of sustaining `2`-per-fault loss
//!   at 1x, 2x, 3x the budget over random failure orders;
//! * edge faults: the retrying edge-dodging embedder attempts full `n!`
//!   rings beyond `n-3` faulty links.
//!
//! No theorem is claimed here — the table reports observed success rates,
//! which is exactly the kind of question the guarantee's sharpness raises.

use star_bench::Table;
use star_fault::{gen, schedule, FaultSet};
use star_perm::factorial;
use star_ring::repair::MaintainedRing;
use star_sim::parallel::sweep;

const TRIALS: u64 = 10;

fn main() {
    star_bench::run_experiment("e9_frontier", run);
}

fn run() {
    // Vertex faults via incremental local repair.
    let mut t1 = Table::new(
        "E9a: sustaining 2-per-fault loss beyond the n-3 vertex budget",
        &[
            "n",
            "budget",
            "faults tried",
            "x budget",
            "success rate",
            "mean achieved loss/fault",
        ],
    );
    let mut configs = Vec::new();
    for n in [6usize, 7] {
        let budget = n - 3;
        for mult in [1usize, 2, 3] {
            configs.push((n, budget * mult));
        }
    }
    let rows = sweep(configs, |&(n, target)| {
        let mut successes = 0u64;
        let mut loss_accum = 0.0f64;
        for seed in 0..TRIALS {
            let sched = schedule::random_schedule(n, target, 7000 + seed).unwrap();
            let mut mr = MaintainedRing::new(n, &FaultSet::empty(n)).unwrap();
            let mut absorbed = 0usize;
            for &v in sched.order() {
                if mr.fail(v).is_err() {
                    break;
                }
                absorbed += 1;
            }
            if absorbed == target && mr.at_optimum() {
                successes += 1;
            }
            let lost = factorial(n) as f64 - mr.len() as f64;
            loss_accum += lost / absorbed.max(1) as f64;
        }
        (n, target, successes, loss_accum / TRIALS as f64)
    });
    for (n, target, successes, mean_loss) in rows {
        let budget = n - 3;
        t1.row(&[
            n.to_string(),
            budget.to_string(),
            target.to_string(),
            format!("{}x", target / budget),
            format!("{}/{}", successes, TRIALS),
            format!("{mean_loss:.2}"),
        ]);
    }
    t1.finish("e9a_vertex_frontier");

    // Edge faults via the retrying edge-dodger.
    let mut t2 = Table::new(
        "E9b: full n! rings beyond the n-3 edge budget (best effort)",
        &["n", "budget", "|Fe| tried", "success rate"],
    );
    let mut configs = Vec::new();
    for n in [6usize, 7] {
        let budget = n - 3;
        for fe in [budget, 2 * budget, 3 * budget] {
            configs.push((n, fe));
        }
    }
    let rows = sweep(configs, |&(n, fe)| {
        let mut successes = 0u64;
        for seed in 0..TRIALS {
            let faults = gen::random_edge_faults(n, fe, 9000 + seed).unwrap();
            // Bypass the budget gate deliberately: call the internal retry
            // sweep through the public mixed API only when within budget,
            // otherwise assemble manually.
            let ok = if faults.total_fault_count() <= n - 3 {
                star_ring::mixed::embed_with_mixed_faults(n, &faults)
                    .map(|r| r.len() as u64 == factorial(n))
                    .unwrap_or(false)
            } else {
                try_beyond_budget_edges(n, &faults)
            };
            if ok {
                successes += 1;
            }
        }
        (n, fe, successes)
    });
    for (n, fe, successes) in rows {
        t2.row(&[
            n.to_string(),
            (n - 3).to_string(),
            fe.to_string(),
            format!("{}/{}", successes, TRIALS),
        ]);
    }
    t2.finish("e9b_edge_frontier");

    println!(
        "\nReading: the 2-per-fault rate usually survives well past the\n\
         proven budget under random failures — the n-3 bound is driven by\n\
         adversarial placements (e.g. encircling a vertex), not typical\n\
         ones. Edge dodging degrades more gracefully still."
    );
}

/// Best-effort full-length embedding with an over-budget edge-fault set:
/// run the pipeline stages directly (the public API enforces the budget).
fn try_beyond_budget_edges(n: usize, faults: &FaultSet) -> bool {
    use star_ring::{expand, hierarchy, positions};
    let Ok(plan) = positions::select_positions(n, faults) else {
        return false;
    };
    let Ok(r4) = hierarchy::build_r4(n, faults, &plan) else {
        return false;
    };
    for spare_index in 0..3 {
        for salt in 0..8 {
            let spare = plan.spare[spare_index % plan.spare.len()];
            if let Ok(v) = expand::expand_with_salt(&r4, faults, spare, salt) {
                if v.len() as u64 == factorial(n) {
                    return true;
                }
            }
        }
    }
    false
}
