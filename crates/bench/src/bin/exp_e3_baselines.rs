//! E3 — improvement over prior art: the same fault sets fed to the paper's
//! construction (`n! - 2f`), the Tseng-style baseline (`n! - 4f`) and — on
//! clustered fault sets — the Latifi–Bagherzadeh construction (`n! - m!`).

use star_baselines::{latifi, tseng_vertex};
use star_bench::{pct, Table};
use star_fault::gen;
use star_perm::factorial;
use star_ring::embed_longest_ring;
use star_sim::parallel::sweep;

fn main() {
    star_bench::run_experiment("e3_baselines", run);
}

fn run() {
    // (a) Random fault sets: ours vs Tseng.
    let mut ta = Table::new(
        "E3a: random faults — paper (n!-2f) vs Tseng baseline (n!-4f)",
        &["n", "|Fv|", "paper", "tseng", "advantage", "paper retained"],
    );
    let mut configs = Vec::new();
    for n in 6..=8usize {
        for fv in 1..=(n - 3) {
            configs.push((n, fv));
        }
    }
    let rows = sweep(configs, |&(n, fv)| {
        let faults = gen::random_vertex_faults(n, fv, 1000 + fv as u64).unwrap();
        let ours = embed_longest_ring(n, &faults).unwrap().len() as u64;
        let tseng = tseng_vertex::tseng_vertex_ring(n, &faults).unwrap().len() as u64;
        (n, fv, ours, tseng)
    });
    for (n, fv, ours, tseng) in rows {
        ta.row(&[
            n.to_string(),
            fv.to_string(),
            ours.to_string(),
            tseng.to_string(),
            format!("+{}", ours - tseng),
            pct(ours, factorial(n)),
        ]);
    }
    ta.finish("e3a_vs_tseng");

    // (b) Clustered fault sets: the three-way comparison, including the
    // crossover where tight clustering favors Latifi (2f > m!).
    let mut tb = Table::new(
        "E3b: clustered faults — paper vs Tseng vs Latifi (n!-m!)",
        &[
            "n",
            "|Fv|",
            "cluster m",
            "paper",
            "tseng",
            "latifi",
            "winner",
        ],
    );
    let mut configs = Vec::new();
    for n in 6..=8usize {
        for (fv, m) in [(2usize, 2usize), (3, 3), (4, 3), (5, 4)] {
            if fv <= n - 3 {
                configs.push((n, fv, m));
            }
        }
    }
    let rows = sweep(configs, |&(n, fv, m)| {
        let faults = gen::clustered_in_substar(n, fv, m, 7).unwrap();
        let ours = embed_longest_ring(n, &faults).unwrap().len() as u64;
        let tseng = tseng_vertex::tseng_vertex_ring(n, &faults).unwrap().len() as u64;
        let lat = latifi::latifi_ring(n, &faults).unwrap();
        (n, fv, lat.m, ours, tseng, lat.ring.len() as u64)
    });
    for (n, fv, m, ours, tseng, lat) in rows {
        let winner = if ours >= lat.max(tseng) {
            if lat > ours {
                "latifi"
            } else {
                "paper"
            }
        } else if lat >= tseng {
            "latifi"
        } else {
            "tseng"
        };
        tb.row(&[
            n.to_string(),
            fv.to_string(),
            m.to_string(),
            ours.to_string(),
            tseng.to_string(),
            lat.to_string(),
            winner.to_string(),
        ]);
    }
    tb.finish("e3b_three_way");
}
