//! `oracle-bench` — latency matrix for the symmetry-canonical oracle.
//!
//! ```text
//! oracle-bench [--samples K] [--n N] [--out FILE]
//! ```
//!
//! Times the three serve-path outcomes the oracle distinguishes, plus
//! raw store reads, and writes the committed `BENCH_*.json` schema so
//! `bench-diff` can track them:
//!
//! - `oracle/literal_hit/nN` — the repeat-request fast path: memoized
//!   canonicalization of a literal fault list already seen, plus the
//!   witness map-back of the cached canonical ring.
//! - `oracle/canonical_hit/nN` — a *fresh* orbit-mate of a stored
//!   scenario: full `Aut(S_n)` canonical search, a checksummed store
//!   read, and the witness map-back. This is the latency a literal-key
//!   cache would have paid a full embed for.
//! - `oracle/cold_miss/nN` — canonical search plus the embed itself
//!   (the price when no orbit representative is stored).
//! - `oracle/store_read/nN` — one checksummed, decoded store read in
//!   isolation; the achieved MiB/s is printed to stderr.
//!
//! Every sample uses a distinct orbit-mate (seeded automorphism ranks),
//! so the canonical-search cost is measured cold, as the server pays it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use star_bench::baseline::{Baseline, BaselineCase};
use star_fault::{gen, FaultSet};
use star_oracle::{canonicalize, Canonicalizer, OracleKey, Store};
use star_perm::{Aut, Perm};
use star_ring::embed_longest_ring;
use star_ring::remap::map_ring;

fn main() -> ExitCode {
    let mut samples = 25usize;
    let mut n = 7usize;
    let mut out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                i += 1;
                samples = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(k) if k >= 1 => k,
                    _ => return fail("--samples needs a positive integer"),
                };
            }
            "--n" => {
                i += 1;
                n = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(k) if (5..=8).contains(&k) => k,
                    _ => return fail("--n must be in 5..=8"),
                };
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => return fail("--out needs a file path"),
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: oracle-bench [--samples K] [--n N] [--out FILE]");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown option `{other}`")),
        }
        i += 1;
    }

    let baseline = match run(n, samples) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let json = baseline.to_json();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                return fail(&format!("{path}: {e}"));
            }
            eprintln!("oracle-bench: summary written to {path}");
        }
        None => print!("{json}"),
    }
    for c in &baseline.cases {
        eprintln!(
            "  {:<26} median {:>12} ns  p95 {:>12} ns",
            c.name, c.median_ns, c.p95_ns
        );
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn case(name: String, n: usize, mode: &str, mut wall_ns: Vec<u64>) -> BaselineCase {
    wall_ns.sort_unstable();
    BaselineCase {
        name,
        n,
        mode: mode.to_string(),
        samples: wall_ns.len(),
        median_ns: percentile(&wall_ns, 0.5),
        p95_ns: percentile(&wall_ns, 0.95),
        oracle_hit_rate: 1.0,
        pool_items_per_worker: 0.0,
        per_conn_rate: 0.0,
    }
}

/// Seeded orbit-mate of `base`: one automorphism applied to every fault.
fn orbit_mate(n: usize, base: &[Perm], seed: u64) -> Vec<u32> {
    let g = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let h = g
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let aut = Aut::from_ranks(n, g, h);
    base.iter().map(|p| aut.apply(p).rank()).collect()
}

fn run(n: usize, samples: usize) -> Result<Baseline, String> {
    let budget = n - 3;
    let base = gen::random_vertex_faults(n, budget, 0xB0B).map_err(|e| e.to_string())?;
    let base_perms: Vec<Perm> = base.vertices().to_vec();
    let base_ranks: Vec<u32> = base_perms.iter().map(Perm::rank).collect();

    // Warm one canonical record: canonicalize the base scenario, embed
    // it in the canonical frame, store it.
    let dir = std::env::temp_dir().join(format!("oracle-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).map_err(|e| e.to_string())?;
    let canon = canonicalize(n, &base_ranks);
    let key = OracleKey::new(&canon, 0, 0);
    let canon_faults = FaultSet::from_vertices(
        n,
        canon
            .ranks()
            .iter()
            .map(|&r| Perm::unrank(n, r).expect("canonical ranks are valid"))
            .collect::<Vec<_>>(),
    )
    .map_err(|e| e.to_string())?;
    let ring_c: Arc<Vec<Perm>> = Arc::new(
        embed_longest_ring(n, &canon_faults)
            .map_err(|e| e.to_string())?
            .into_vertices(),
    );
    store
        .append_batch(&[(key.clone(), star_oracle::pack_ring(&ring_c))])
        .map_err(|e| e.to_string())?;

    let mut cases = Vec::new();

    // literal_hit: memoized canonicalization + witness map-back of the
    // in-memory canonical ring (the LRU-hit path; no disk).
    let memo = Canonicalizer::default();
    memo.canonicalize(n, &base_ranks); // prime the memo
    let wall: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let (c, _) = memo.canonicalize(n, &base_ranks);
            let ring = map_ring(&ring_c, &c.witness().inverse());
            let ns = t0.elapsed().as_nanos() as u64;
            assert_eq!(ring.len(), ring_c.len());
            ns
        })
        .collect();
    cases.push(case(format!("oracle/literal_hit/n{n}"), n, "hit", wall));

    // canonical_hit: fresh orbit-mate each sample — cold canonical
    // search + checksummed store read + witness map-back.
    let wall: Vec<u64> = (0..samples)
        .map(|s| {
            let mate = orbit_mate(n, &base_perms, s as u64 + 1);
            let t0 = Instant::now();
            let c = canonicalize(n, &mate);
            let k = OracleKey::new(&c, 0, 0);
            let stored = store.get(&k).expect("orbit-mate must hit the store");
            let ring = map_ring(&stored, &c.witness().inverse());
            let ns = t0.elapsed().as_nanos() as u64;
            assert_eq!(ring.len(), ring_c.len());
            ns
        })
        .collect();
    cases.push(case(format!("oracle/canonical_hit/n{n}"), n, "hit", wall));

    // cold_miss: cold canonical search + the embed itself (the
    // write-behind persist is off the request path and not charged).
    let wall: Vec<u64> = (0..samples)
        .map(|s| {
            let mate = orbit_mate(n, &base_perms, 10_000 + s as u64);
            let faults = FaultSet::from_vertices(
                n,
                mate.iter()
                    .map(|&r| Perm::unrank(n, r).expect("orbit ranks are valid"))
                    .collect::<Vec<_>>(),
            )
            .expect("orbit-mates stay distinct");
            let t0 = Instant::now();
            let c = canonicalize(n, &mate);
            let ring = embed_longest_ring(n, &faults).expect("embed succeeds");
            let ns = t0.elapsed().as_nanos() as u64;
            assert!(c.exact() && !ring.is_empty());
            ns
        })
        .collect();
    cases.push(case(format!("oracle/cold_miss/n{n}"), n, "miss", wall));

    // store_read: the disk layer alone — lookup, checksum, decode.
    let record_bytes = store.stats().bytes.max(1);
    let wall: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let stored = store.get(&key).expect("warmed key must read back");
            let ns = t0.elapsed().as_nanos() as u64;
            assert_eq!(stored.len(), ring_c.len());
            ns
        })
        .collect();
    let median_read = percentile(
        &{
            let mut w = wall.clone();
            w.sort_unstable();
            w
        },
        0.5,
    );
    eprintln!(
        "oracle-bench: store read throughput ≈ {:.1} MiB/s ({} B record, median {} ns)",
        record_bytes as f64 / (median_read.max(1) as f64 / 1e9) / (1 << 20) as f64,
        record_bytes,
        median_read,
    );
    cases.push(case(format!("oracle/store_read/n{n}"), n, "store", wall));

    let _ = std::fs::remove_dir_all(&dir);
    let created_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    Ok(Baseline { created_ms, cases })
}
