//! Failure schedules: *ordered* fault arrivals for degradation studies.
//!
//! A [`crate::FaultSet`] is a snapshot; a [`FailureSchedule`] is a
//! timeline — the order in which processors die. The resilience simulator
//! replays schedules against a maintained ring. Generators cover the
//! regimes an operator would stress:
//!
//! * [`random_schedule`] — independent uniform failures;
//! * [`partite_attack`] — an adversary killing one side of the bipartition
//!   (drives the worst-case bound);
//! * [`neighborhood_attack`] — an adversary encircling a victim processor
//!   (drives toward disconnection, the reason the budget is `n-3`);
//! * [`spreading_failure`] — correlated failures growing outward from a
//!   seed (cable cut / cooling-zone model): each subsequent failure is
//!   adjacent to an earlier one.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use star_perm::{factorial, Parity, Perm};

use crate::FaultError;

/// An ordered sequence of distinct processors failing one at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSchedule {
    n: usize,
    order: Vec<Perm>,
}

impl FailureSchedule {
    /// Wraps an explicit ordered failure list (must be distinct).
    pub fn new(n: usize, order: Vec<Perm>) -> Result<Self, FaultError> {
        let mut seen = std::collections::HashSet::new();
        for v in &order {
            if v.n() != n {
                return Err(FaultError::DimensionMismatch {
                    expected: n,
                    found: v.n(),
                });
            }
            if !seen.insert(v.rank()) {
                return Err(FaultError::DuplicateFault);
            }
        }
        Ok(FailureSchedule { n, order })
    }

    /// Host dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The arrivals, in order.
    pub fn order(&self) -> &[Perm] {
        &self.order
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` iff the schedule has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The cumulative fault set after `k` arrivals.
    pub fn prefix_faults(&self, k: usize) -> crate::FaultSet {
        crate::FaultSet::from_vertices(self.n, self.order[..k].iter().copied())
            .expect("schedule entries are distinct")
    }
}

/// `count` independent uniform failures.
pub fn random_schedule(n: usize, count: usize, seed: u64) -> Result<FailureSchedule, FaultError> {
    let fs = crate::gen::random_vertex_faults(n, count, seed)?;
    FailureSchedule::new(n, fs.vertices().to_vec())
}

/// `count` failures all on one partite set, in random order.
pub fn partite_attack(
    n: usize,
    count: usize,
    parity: Parity,
    seed: u64,
) -> Result<FailureSchedule, FaultError> {
    let fs = crate::gen::worst_case_same_partite(n, count, parity, seed)?;
    FailureSchedule::new(n, fs.vertices().to_vec())
}

/// `count <= n-1` failures encircling `victim`: its neighbors die one by
/// one (in dimension order). At `count = n-1` the victim is stranded —
/// which is why no embedding theorem can tolerate more than `n-3` faults
/// and still always run a maximum ring through every healthy vertex.
pub fn neighborhood_attack(victim: &Perm, count: usize) -> Result<FailureSchedule, FaultError> {
    let n = victim.n();
    if count > n - 1 {
        return Err(FaultError::TooManyFaults {
            requested: count,
            available: n - 1,
        });
    }
    FailureSchedule::new(n, victim.neighbors().take(count).collect())
}

/// `count` correlated failures spreading from a random seed vertex: every
/// failure after the first is adjacent to some earlier failure (connected
/// damage region).
pub fn spreading_failure(n: usize, count: usize, seed: u64) -> Result<FailureSchedule, FaultError> {
    if count as u64 > factorial(n) {
        return Err(FaultError::TooManyFaults {
            requested: count,
            available: factorial(n) as usize,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let first = Perm::unrank(n, rng.random_range(0..factorial(n)) as u32).expect("rank in range");
    let mut order = vec![first];
    let mut dead: std::collections::HashSet<u32> = [first.rank()].into();
    while order.len() < count {
        // Pick a random dead vertex and a random healthy neighbor of it.
        let base = order[rng.random_range(0..order.len() as u64) as usize];
        let candidates: Vec<Perm> = base
            .neighbors()
            .filter(|w| !dead.contains(&w.rank()))
            .collect();
        if candidates.is_empty() {
            continue; // that region is saturated; try another base
        }
        let next = candidates[rng.random_range(0..candidates.len() as u64) as usize];
        dead.insert(next.rank());
        order.push(next);
    }
    FailureSchedule::new(n, order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedules_validate() {
        let a = Perm::identity(5);
        let b = a.star_move(2);
        let s = FailureSchedule::new(5, vec![a, b]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.prefix_faults(1).vertex_fault_count(), 1);
        assert!(FailureSchedule::new(5, vec![a, a]).is_err());
        assert!(FailureSchedule::new(4, vec![a]).is_err());
    }

    #[test]
    fn spreading_failures_are_connected() {
        let s = spreading_failure(5, 6, 3).unwrap();
        assert_eq!(s.len(), 6);
        for (i, v) in s.order().iter().enumerate().skip(1) {
            assert!(
                s.order()[..i].iter().any(|w| w.is_adjacent(v)),
                "failure {i} must touch the damage region"
            );
        }
    }

    #[test]
    fn neighborhood_attack_targets_neighbors_in_order() {
        let victim = Perm::from_digits(5, 34512);
        let s = neighborhood_attack(&victim, 3).unwrap();
        for (d, v) in s.order().iter().enumerate() {
            assert_eq!(victim.edge_dimension_to(v), Some(d + 1));
        }
        assert!(neighborhood_attack(&victim, 5).is_err());
    }

    #[test]
    fn partite_attack_is_one_sided() {
        let s = partite_attack(6, 3, Parity::Odd, 9).unwrap();
        assert!(s.order().iter().all(|v| v.parity() == Parity::Odd));
    }
}
