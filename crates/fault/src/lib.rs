//! # star-fault
//!
//! Fault models for star-graph multiprocessors.
//!
//! The paper studies `S_n` with a set `F_v` of *vertex faults* (dead
//! processors) and, in the prior work it improves on, a set `F_e` of *edge
//! faults* (dead links). This crate provides:
//!
//! - [`FaultSet`] — a combined vertex/edge fault set over `S_n`, with O(1)
//!   health queries by Lehmer rank.
//! - [`gen`] — reproducible fault-set generators covering the regimes the
//!   experiments need: uniform random, **worst-case** (all faults in one
//!   partite set, the configuration that makes `n! - 2|F_v|` tight),
//!   clustered inside a minimal sub-star (the Latifi–Bagherzadeh regime),
//!   adversarial same-neighborhood placements, and random/same-dimension
//!   edge faults.
//! - [`schedule`] — *ordered* failure timelines (random, partite attack,
//!   neighborhood attack, spreading damage) for degradation studies.

mod error;
mod set;

pub mod gen;
pub mod schedule;

pub use error::FaultError;
pub use set::FaultSet;
