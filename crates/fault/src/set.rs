//! The [`FaultSet`] type.

use std::collections::HashSet;

use star_graph::{Edge, Pattern};
use star_perm::Perm;

use crate::FaultError;

/// A set of vertex and edge faults in `S_n`.
///
/// Vertex faults model dead processors, edge faults dead links. Queries are
/// O(1) via Lehmer-rank hash sets; iteration uses insertion order so
/// experiments are reproducible.
///
/// # Examples
///
/// ```
/// use star_fault::FaultSet;
/// use star_perm::Perm;
///
/// let dead = Perm::from_digits(4, 2134);
/// let faults = FaultSet::from_vertices(4, [dead]).unwrap();
/// assert!(faults.is_vertex_faulty(&dead));
/// assert!(faults.is_vertex_healthy(&Perm::identity(4)));
/// assert!(faults.within_budget()); // 1 <= 4 - 3
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSet {
    n: usize,
    vertex_ranks: HashSet<u32>,
    vertex_list: Vec<Perm>,
    edge_ranks: HashSet<(u32, u32)>,
    edge_list: Vec<Edge>,
}

impl FaultSet {
    /// An empty fault set over `S_n`.
    pub fn empty(n: usize) -> Self {
        FaultSet {
            n,
            ..Default::default()
        }
    }

    /// Builds a vertex-fault-only set.
    pub fn from_vertices<I>(n: usize, vertices: I) -> Result<Self, FaultError>
    where
        I: IntoIterator<Item = Perm>,
    {
        let mut fs = FaultSet::empty(n);
        for v in vertices {
            fs.add_vertex(v)?;
        }
        Ok(fs)
    }

    /// Builds an edge-fault-only set.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, FaultError>
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut fs = FaultSet::empty(n);
        for e in edges {
            fs.add_edge(e)?;
        }
        Ok(fs)
    }

    /// The star-graph dimension this fault set applies to.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds a vertex fault.
    pub fn add_vertex(&mut self, v: Perm) -> Result<(), FaultError> {
        if v.n() != self.n {
            return Err(FaultError::DimensionMismatch {
                expected: self.n,
                found: v.n(),
            });
        }
        if !self.vertex_ranks.insert(v.rank()) {
            return Err(FaultError::DuplicateFault);
        }
        self.vertex_list.push(v);
        Ok(())
    }

    /// Adds an edge fault.
    pub fn add_edge(&mut self, e: Edge) -> Result<(), FaultError> {
        if e.lo().n() != self.n {
            return Err(FaultError::DimensionMismatch {
                expected: self.n,
                found: e.lo().n(),
            });
        }
        if !self.edge_ranks.insert((e.lo().rank(), e.hi().rank())) {
            return Err(FaultError::DuplicateFault);
        }
        self.edge_list.push(e);
        Ok(())
    }

    /// `|F_v|`.
    #[inline]
    pub fn vertex_fault_count(&self) -> usize {
        self.vertex_list.len()
    }

    /// `|F_e|`.
    #[inline]
    pub fn edge_fault_count(&self) -> usize {
        self.edge_list.len()
    }

    /// `|F_v| + |F_e|`.
    #[inline]
    pub fn total_fault_count(&self) -> usize {
        self.vertex_list.len() + self.edge_list.len()
    }

    /// `true` iff there are no faults at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertex_list.is_empty() && self.edge_list.is_empty()
    }

    /// The paper's fault budget: `|F_v| + |F_e| <= n - 3`.
    #[inline]
    pub fn within_budget(&self) -> bool {
        self.total_fault_count() + 3 <= self.n
    }

    /// `true` iff `v` is a faulty processor.
    #[inline]
    pub fn is_vertex_faulty(&self, v: &Perm) -> bool {
        v.n() == self.n && self.vertex_ranks.contains(&v.rank())
    }

    /// `true` iff `v` is healthy.
    #[inline]
    pub fn is_vertex_healthy(&self, v: &Perm) -> bool {
        !self.is_vertex_faulty(v)
    }

    /// `true` iff the link `{u, v}` is faulty (only meaningful for adjacent
    /// pairs; non-edges report `false`).
    pub fn is_edge_faulty(&self, u: &Perm, v: &Perm) -> bool {
        let (a, b) = if u.rank() <= v.rank() {
            (u.rank(), v.rank())
        } else {
            (v.rank(), u.rank())
        };
        self.edge_ranks.contains(&(a, b))
    }

    /// `true` iff the step `u -> v` may be used: both processors and the
    /// link between them are healthy.
    pub fn is_step_healthy(&self, u: &Perm, v: &Perm) -> bool {
        self.is_vertex_healthy(u) && self.is_vertex_healthy(v) && !self.is_edge_faulty(u, v)
    }

    /// The faulty vertices, in insertion order.
    pub fn vertices(&self) -> &[Perm] {
        &self.vertex_list
    }

    /// The faulty edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edge_list
    }

    /// The vertex faults that lie inside an embedded sub-star.
    pub fn vertex_faults_in(&self, pattern: &Pattern) -> Vec<Perm> {
        self.vertex_list
            .iter()
            .filter(|v| pattern.contains(v))
            .copied()
            .collect()
    }

    /// Number of vertex faults inside an embedded sub-star.
    pub fn count_vertex_faults_in(&self, pattern: &Pattern) -> usize {
        self.vertex_list
            .iter()
            .filter(|v| pattern.contains(v))
            .count()
    }

    /// The edge faults with **both** endpoints inside the pattern.
    pub fn edge_faults_within(&self, pattern: &Pattern) -> Vec<Edge> {
        self.edge_list
            .iter()
            .filter(|e| pattern.contains(e.lo()) && pattern.contains(e.hi()))
            .copied()
            .collect()
    }

    /// `true` iff the pattern contains any fault (vertex, or edge fully
    /// inside).
    pub fn pattern_is_faulty(&self, pattern: &Pattern) -> bool {
        self.vertex_list.iter().any(|v| pattern.contains(v))
            || self
                .edge_list
                .iter()
                .any(|e| pattern.contains(e.lo()) && pattern.contains(e.hi()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_queries() {
        let f1 = Perm::from_digits(5, 21345);
        let f2 = Perm::from_digits(5, 32145);
        let fs = FaultSet::from_vertices(5, [f1, f2]).unwrap();
        assert_eq!(fs.vertex_fault_count(), 2);
        assert!(fs.is_vertex_faulty(&f1));
        assert!(fs.is_vertex_healthy(&Perm::identity(5)));
        assert!(fs.within_budget()); // 2 <= 5 - 3
    }

    #[test]
    fn duplicate_and_mismatch_rejected() {
        let mut fs = FaultSet::empty(5);
        let f = Perm::from_digits(5, 21345);
        fs.add_vertex(f).unwrap();
        assert_eq!(fs.add_vertex(f), Err(FaultError::DuplicateFault));
        assert!(matches!(
            fs.add_vertex(Perm::identity(4)),
            Err(FaultError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn edge_faults() {
        let u = Perm::identity(4);
        let v = u.star_move(2);
        let e = Edge::new(u, v).unwrap();
        let fs = FaultSet::from_edges(4, [e]).unwrap();
        assert!(fs.is_edge_faulty(&u, &v));
        assert!(fs.is_edge_faulty(&v, &u));
        assert!(!fs.is_edge_faulty(&u, &u.star_move(1)));
        assert!(!fs.is_step_healthy(&u, &v));
        assert!(fs.is_step_healthy(&u, &u.star_move(1)));
    }

    #[test]
    fn budget_threshold() {
        let mut fs = FaultSet::empty(5);
        for digits in [21345u64, 32145, 42315] {
            fs.add_vertex(Perm::from_digits(5, digits)).unwrap();
        }
        // 3 faults > 5 - 3 = 2.
        assert!(!fs.within_budget());
    }

    #[test]
    fn pattern_queries() {
        let p = Pattern::from_spec(&[0, 0, 0, 4, 5]).unwrap();
        let inside = Perm::from_digits(5, 21345);
        let outside = Perm::from_digits(5, 21354);
        let fs = FaultSet::from_vertices(5, [inside, outside]).unwrap();
        assert_eq!(fs.vertex_faults_in(&p), vec![inside]);
        assert_eq!(fs.count_vertex_faults_in(&p), 1);
        assert!(fs.pattern_is_faulty(&p));

        // Edge fully inside vs crossing.
        let e_in = Edge::new(inside, inside.star_move(1)).unwrap();
        let e_cross = Edge::new(inside, inside.star_move(3)).unwrap();
        let fs2 = FaultSet::from_edges(5, [e_in, e_cross]).unwrap();
        assert_eq!(fs2.edge_faults_within(&p), vec![e_in]);
    }
}
