//! Reproducible fault-set generators.
//!
//! Every generator is deterministic given its `seed`, so experiment tables
//! can be regenerated bit-for-bit.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use star_graph::{Edge, Pattern};
use star_perm::{factorial, Parity, Perm};

use crate::{FaultError, FaultSet};

/// `count` distinct vertex faults sampled uniformly from `S_n`.
pub fn random_vertex_faults(n: usize, count: usize, seed: u64) -> Result<FaultSet, FaultError> {
    let total = factorial(n);
    if count as u64 > total {
        return Err(FaultError::TooManyFaults {
            requested: count,
            available: total as usize,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fs = FaultSet::empty(n);
    while fs.vertex_fault_count() < count {
        let rank = rng.random_range(0..total) as u32;
        let v = Perm::unrank(n, rank).expect("rank in range");
        // Ignore duplicates; resample.
        let _ = fs.add_vertex(v);
    }
    Ok(fs)
}

/// `count` distinct vertex faults all drawn from one partite set — the
/// **worst case** for ring length, which makes the paper's `n! - 2|F_v|`
/// bound tight. `parity` selects the damaged side.
pub fn worst_case_same_partite(
    n: usize,
    count: usize,
    parity: Parity,
    seed: u64,
) -> Result<FaultSet, FaultError> {
    let total = factorial(n);
    // S_1 has a single (even) vertex; the odd side is empty.
    let side = if n == 1 {
        if parity == Parity::Even {
            1
        } else {
            0
        }
    } else {
        total / 2
    };
    if count as u64 > side {
        return Err(FaultError::TooManyFaults {
            requested: count,
            available: side as usize,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fs = FaultSet::empty(n);
    while fs.vertex_fault_count() < count {
        let rank = rng.random_range(0..total) as u32;
        let v = Perm::unrank(n, rank).expect("rank in range");
        if v.parity() == parity {
            let _ = fs.add_vertex(v);
        }
    }
    Ok(fs)
}

/// `count` vertex faults all inside one random embedded `S_m` — the regime
/// where the Latifi–Bagherzadeh construction pays `m!` while the paper's
/// pays only `2·count`.
pub fn clustered_in_substar(
    n: usize,
    count: usize,
    m: usize,
    seed: u64,
) -> Result<FaultSet, FaultError> {
    assert!(m >= 1 && m <= n, "sub-star order out of range");
    if count as u64 > factorial(m) {
        return Err(FaultError::TooManyFaults {
            requested: count,
            available: factorial(m) as usize,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Pin positions n-1, n-2, ..., m to random distinct symbols.
    let mut pattern = Pattern::full(n);
    for pos in (m..n).rev() {
        let free: Vec<u8> = pattern.free_symbols().iter().collect();
        let s = free[rng.random_range(0..free.len())];
        pattern = pattern.sub(pos, s).expect("position free by construction");
    }
    debug_assert_eq!(pattern.r(), m);
    let total = factorial(m);
    let mut fs = FaultSet::empty(n);
    while fs.vertex_fault_count() < count {
        let local_rank = rng.random_range(0..total) as u32;
        let local = Perm::unrank(m, local_rank).expect("rank in range");
        let _ = fs.add_vertex(pattern.from_local(&local));
    }
    Ok(fs)
}

/// Deterministic adversarial placement: the faults are neighbors of a
/// single "victim" vertex, concentrating damage in one neighborhood
/// (`count <= n-1`). This is the configuration that shows why
/// `|F_v| <= n-3` is necessary: `n-1` faults would strand the victim.
pub fn adversarial_neighborhood(n: usize, count: usize) -> Result<FaultSet, FaultError> {
    if count > n - 1 {
        return Err(FaultError::TooManyFaults {
            requested: count,
            available: n - 1,
        });
    }
    let victim = Perm::identity(n);
    FaultSet::from_vertices(n, victim.neighbors().take(count))
}

/// `count` distinct random edge faults.
pub fn random_edge_faults(n: usize, count: usize, seed: u64) -> Result<FaultSet, FaultError> {
    let edges_total = factorial(n) * (n as u64 - 1) / 2;
    if count as u64 > edges_total {
        return Err(FaultError::TooManyFaults {
            requested: count,
            available: edges_total as usize,
        });
    }
    let total = factorial(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fs = FaultSet::empty(n);
    while fs.edge_fault_count() < count {
        let rank = rng.random_range(0..total) as u32;
        let u = Perm::unrank(n, rank).expect("rank in range");
        let d = rng.random_range(1..n);
        let e = Edge::new(u, u.star_move(d)).expect("star move yields an edge");
        let _ = fs.add_edge(e);
    }
    Ok(fs)
}

/// `count` random edge faults all along the **same dimension** `d` — the
/// adversarial regime for edge-fault Hamiltonian embedding (the faults
/// cannot be separated by partitioning elsewhere; they must all be dodged
/// as crossing edges).
pub fn same_dimension_edge_faults(
    n: usize,
    count: usize,
    d: usize,
    seed: u64,
) -> Result<FaultSet, FaultError> {
    assert!(d >= 1 && d < n, "invalid dimension {d}");
    let dim_edges = factorial(n) / 2;
    if count as u64 > dim_edges {
        return Err(FaultError::TooManyFaults {
            requested: count,
            available: dim_edges as usize,
        });
    }
    let total = factorial(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fs = FaultSet::empty(n);
    while fs.edge_fault_count() < count {
        let rank = rng.random_range(0..total) as u32;
        let u = Perm::unrank(n, rank).expect("rank in range");
        let e = Edge::new(u, u.star_move(d)).expect("star move yields an edge");
        let _ = fs.add_edge(e);
    }
    Ok(fs)
}

/// A mixed fault set: `fv` random vertex faults plus `fe` random edge
/// faults avoiding faulty endpoints (an edge incident to a dead processor
/// is already unusable, so charging it separately would double-count).
pub fn mixed_faults(n: usize, fv: usize, fe: usize, seed: u64) -> Result<FaultSet, FaultError> {
    let mut fs = random_vertex_faults(n, fv, seed)?;
    let total = factorial(n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    while fs.edge_fault_count() < fe {
        let rank = rng.random_range(0..total) as u32;
        let u = Perm::unrank(n, rank).expect("rank in range");
        let d = rng.random_range(1..n);
        let v = u.star_move(d);
        if fs.is_vertex_faulty(&u) || fs.is_vertex_faulty(&v) {
            continue;
        }
        let e = Edge::new(u, v).expect("star move yields an edge");
        let _ = fs.add_edge(e);
    }
    Ok(fs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_faults_are_distinct_and_reproducible() {
        let a = random_vertex_faults(5, 2, 42).unwrap();
        let b = random_vertex_faults(5, 2, 42).unwrap();
        assert_eq!(a.vertices(), b.vertices());
        assert_eq!(a.vertex_fault_count(), 2);
        let c = random_vertex_faults(5, 2, 43).unwrap();
        // Overwhelmingly likely to differ; deterministic given seeds.
        assert_ne!(a.vertices(), c.vertices());
    }

    #[test]
    fn worst_case_faults_share_parity() {
        let fs = worst_case_same_partite(6, 3, Parity::Even, 7).unwrap();
        assert!(fs.vertices().iter().all(|v| v.parity() == Parity::Even));
        let fs_odd = worst_case_same_partite(6, 3, Parity::Odd, 7).unwrap();
        assert!(fs_odd.vertices().iter().all(|v| v.parity() == Parity::Odd));
    }

    #[test]
    fn worst_case_degenerate_parity_rejected() {
        // Regression: S_1 has no odd vertices; asking for one must error,
        // not hang in rejection sampling.
        use star_perm::Parity;
        assert!(matches!(
            worst_case_same_partite(1, 1, Parity::Odd, 0),
            Err(FaultError::TooManyFaults { available: 0, .. })
        ));
        assert!(worst_case_same_partite(1, 1, Parity::Even, 0).is_ok());
    }

    #[test]
    fn clustered_faults_live_in_an_m_substar() {
        let fs = clustered_in_substar(6, 4, 3, 11).unwrap();
        assert_eq!(fs.vertex_fault_count(), 4);
        // All faults agree on positions 3..6.
        let first = fs.vertices()[0];
        for v in fs.vertices() {
            for pos in 3..6 {
                assert_eq!(v.get(pos), first.get(pos));
            }
        }
    }

    #[test]
    fn clustered_rejects_overfull() {
        assert!(matches!(
            clustered_in_substar(6, 7, 3, 0),
            Err(FaultError::TooManyFaults { .. })
        ));
    }

    #[test]
    fn adversarial_neighborhood_hits_neighbors() {
        let fs = adversarial_neighborhood(5, 2).unwrap();
        let victim = Perm::identity(5);
        for v in fs.vertices() {
            assert!(v.is_adjacent(&victim));
        }
        assert!(adversarial_neighborhood(5, 5).is_err());
    }

    #[test]
    fn same_dimension_edges() {
        let fs = same_dimension_edge_faults(5, 2, 3, 9).unwrap();
        for e in fs.edges() {
            assert_eq!(e.dimension(), 3);
        }
    }

    #[test]
    fn mixed_counts() {
        let fs = mixed_faults(6, 2, 1, 5).unwrap();
        assert_eq!(fs.vertex_fault_count(), 2);
        assert_eq!(fs.edge_fault_count(), 1);
        // Edge faults avoid faulty endpoints.
        for e in fs.edges() {
            assert!(fs.is_vertex_healthy(e.lo()));
            assert!(fs.is_vertex_healthy(e.hi()));
        }
        assert!(fs.within_budget());
    }
}
