//! Error type for fault-set construction.

use core::fmt;

/// Errors raised when building fault sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A fault vertex/edge endpoint has the wrong permutation size.
    DimensionMismatch {
        /// Expected star-graph dimension.
        expected: usize,
        /// Size found.
        found: usize,
    },
    /// The same vertex or edge was inserted twice.
    DuplicateFault,
    /// A generator was asked for more faults than the regime supports
    /// (e.g. more same-partite-set faults than the partite set holds).
    TooManyFaults {
        /// Requested count.
        requested: usize,
        /// Maximum available.
        available: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "fault dimension mismatch: expected {expected}, found {found}"
                )
            }
            FaultError::DuplicateFault => write!(f, "duplicate fault"),
            FaultError::TooManyFaults {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} faults but only {available} available"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}
