//! # star-pool
//!
//! The workspace's shared work pool: order-preserving parallel maps over
//! scoped threads, with a process-wide thread-count knob.
//!
//! Promoted out of `star-sim` so that both the simulator's parameter
//! sweeps *and* the core embedder's per-block path materialization share
//! one scheduling policy (and `star-ring` need not depend on the
//! simulator). Work is split into **contiguous chunks**, one per worker:
//! item costs in this workspace are roughly uniform (one memoized oracle
//! query, or one independent embed), so an even contiguous split balances
//! as well as interleaving while keeping every worker's reads and writes
//! adjacent in memory — which is what lets workers fill disjoint slices
//! of one flat output arena ([`try_fill_chunks`]) instead of allocating
//! per-item vectors and stitching them back together.
//!
//! ## Thread-count policy
//!
//! [`set_threads`] installs a process-wide override (`0` restores auto).
//! Under auto, [`sweep`] uses one worker per item up to the hardware
//! parallelism, while fine-grained callers use [`workers_for`] with a
//! minimum batch size per worker so that small inputs stay serial and
//! large ones cap out before the global allocator becomes the bottleneck.
//! An explicit override wins over both heuristics — `--threads 1` forces
//! every parallel path in the process serial, which is how the
//! byte-identical serial-vs-parallel conformance tests are driven.
//! **Caveat:** on a single-core host (containers with one CPU in the
//! affinity mask included) auto resolves to one worker everywhere; a
//! benchmark that wants to *measure* the parallel machinery must install
//! an explicit override rather than trust auto (this is exactly how the
//! seed perf baseline silently degenerated to serial-vs-serial).
//!
//! ## Utilization metrics
//!
//! Every parallel run records three `star-obs` counters: `pool.jobs`
//! (parallel invocations), `pool.workers` (scoped threads spawned) and
//! `pool.items` (work items processed — map items for the map entry
//! points, output slots for [`try_fill_chunks`]), so sweep throughput and
//! worker fan-out are visible in any metrics snapshot. Serial fallbacks
//! record nothing: `pool.workers > 0` after a run is the definitive
//! "the pool actually engaged" signal the perf baseline asserts on.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Auto-mode cap on workers for fine-grained (per-block) fan-out; beyond
/// this the memory bus dominates. Explicit [`set_threads`] overrides it.
pub const MAX_AUTO_WORKERS: usize = 8;

/// Process-wide thread override; 0 means "auto".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

struct PoolObs {
    jobs: star_obs::Counter,
    workers: star_obs::Counter,
    items: star_obs::Counter,
}

fn obs() -> &'static PoolObs {
    static OBS: OnceLock<PoolObs> = OnceLock::new();
    OBS.get_or_init(|| PoolObs {
        jobs: star_obs::counter("pool.jobs"),
        workers: star_obs::counter("pool.workers"),
        items: star_obs::counter("pool.items"),
    })
}

/// Sets the process-wide worker-thread count for all pool entry points.
/// `0` restores the automatic policy (hardware parallelism with
/// per-caller batching heuristics). Takes effect for subsequent calls;
/// in-flight parallel runs are unaffected.
pub fn set_threads(threads: usize) {
    CONFIGURED.store(threads, Ordering::Release);
}

/// The explicit thread override, if one is installed.
pub fn configured_threads() -> Option<usize> {
    match CONFIGURED.load(Ordering::Acquire) {
        0 => None,
        t => Some(t),
    }
}

/// The resolved thread budget: the explicit override, or the hardware
/// parallelism.
pub fn threads() -> usize {
    configured_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Worker count for a fine-grained run of `items` uniform work items.
///
/// With an explicit [`set_threads`] override the override wins, clamped
/// to the item count. Under auto, allots at least
/// `min_items_per_worker` items to each worker and caps the fan-out at
/// [`MAX_AUTO_WORKERS`] and the hardware parallelism — so small inputs
/// run serially and large ones stop scaling before the memory bus
/// saturates.
///
/// Degenerate cases are pinned down (and unit-tested) explicitly:
/// `items == 0` is always 1 worker regardless of any override (there is
/// nothing to fan out, and clamping an override into an empty range
/// would otherwise panic); `min_items_per_worker == 0` is treated as 1;
/// `items < min_items_per_worker` stays serial under auto; an override
/// of 1 — the conformance-test mode — forces serial everywhere, which is
/// distinct from an override of 0 (auto).
pub fn workers_for(items: usize, min_items_per_worker: usize) -> usize {
    if items == 0 {
        return 1;
    }
    match configured_threads() {
        Some(t) => t.clamp(1, items),
        None => (items / min_items_per_worker.max(1))
            .min(threads())
            .clamp(1, MAX_AUTO_WORKERS),
    }
}

/// Evenly partitions `0..len` into `chunks` contiguous ranges, returned
/// as ascending cut points `[0, c_1, ..., len]` (length `chunks + 1`).
/// The first `len % chunks` chunks are one longer, so sizes differ by at
/// most one. `chunks` is clamped to `1..=len.max(1)`.
pub fn chunk_cuts(len: usize, chunks: usize) -> Vec<usize> {
    let chunks = chunks.clamp(1, len.max(1));
    let (base, extra) = (len / chunks, len % chunks);
    let mut cuts = Vec::with_capacity(chunks + 1);
    let mut at = 0usize;
    cuts.push(0);
    for c in 0..chunks {
        at += base + usize::from(c < extra);
        cuts.push(at);
    }
    cuts
}

/// Applies `f` to every input in parallel, preserving input order in the
/// output. Worker count is `threads()` clamped to the input size; panics
/// in workers propagate to the caller.
pub fn sweep<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads().clamp(1, n);
    if workers == 1 {
        return inputs.iter().map(f).collect();
    }
    record_run(workers, n);

    // Worker w handles the contiguous range cuts[w]..cuts[w+1]; the
    // per-worker outputs concatenate back in input order.
    let cuts = chunk_cuts(n, workers);
    let worker_outputs: Vec<Vec<R>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let inputs = &inputs[cuts[w]..cuts[w + 1]];
                let f = &f;
                scope.spawn(move |_| inputs.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope failed");

    let mut out = Vec::with_capacity(n);
    for chunk in worker_outputs {
        out.extend(chunk);
    }
    out
}

/// Computes `f(0..len)` on `workers` threads, preserving index order, and
/// returns `None` as soon as any item fails (a cooperative abort flag
/// stops the remaining workers early). `workers <= 1` runs inline with no
/// thread or metric overhead — callers pick the count via
/// [`workers_for`]. Each worker owns one contiguous index range, so
/// per-worker memory access stays sequential.
pub fn try_map_indexed<R, F>(len: usize, workers: usize, f: F) -> Option<Vec<R>>
where
    R: Send,
    F: Fn(usize) -> Option<R> + Sync,
{
    if workers <= 1 || len < 2 {
        return (0..len).map(f).collect();
    }
    let workers = workers.min(len);
    record_run(workers, len);
    let abort = AtomicBool::new(false);
    let cuts = chunk_cuts(len, workers);
    let results: Vec<Option<Vec<R>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let abort = &abort;
                let (lo, hi) = (cuts[w], cuts[w + 1]);
                scope.spawn(move |_| {
                    let mut chunk = Vec::with_capacity(hi - lo);
                    for i in lo..hi {
                        if abort.load(Ordering::Relaxed) {
                            return None;
                        }
                        match f(i) {
                            Some(r) => chunk.push(r),
                            None => {
                                abort.store(true, Ordering::Relaxed);
                                return None;
                            }
                        }
                    }
                    Some(chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
    .expect("pool scope failed");
    let mut out = Vec::with_capacity(len);
    for chunk in results {
        out.extend(chunk?);
    }
    Some(out)
}

/// Per-chunk context handed to [`try_fill_chunks`] closures.
pub struct ChunkCtx<'a> {
    /// Chunk index (position in the `cuts` array).
    pub index: usize,
    /// Absolute offset of this chunk's first output slot.
    pub start: usize,
    abort: &'a AtomicBool,
}

impl ChunkCtx<'_> {
    /// `true` once any chunk has failed; long-running closures should
    /// poll this between items and bail out early.
    #[inline]
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }
}

/// Fills disjoint contiguous slices of `out` in parallel — the flat-arena
/// work distributor. `cuts` must be ascending offsets starting at 0 and
/// ending at `out.len()` (see [`chunk_cuts`], or caller-computed cuts
/// aligned to logical record boundaries); chunk `c` receives exactly
/// `out[cuts[c]..cuts[c+1]]` plus a [`ChunkCtx`], runs on its own scoped
/// thread, and returns `false` to abort the whole run. Returns `true`
/// iff every chunk succeeded; on failure `out`'s contents are
/// unspecified (partially filled).
///
/// A single chunk runs inline with no thread or metric overhead. With
/// more, the run records `pool.workers = chunks` and `pool.items =
/// out.len()` (slots filled), so fan-out is visible to metric snapshots.
///
/// # Panics
/// Panics if `cuts` is not a monotone partition of `0..out.len()`.
pub fn try_fill_chunks<T, F>(out: &mut [T], cuts: &[usize], f: F) -> bool
where
    T: Send,
    F: Fn(&ChunkCtx<'_>, &mut [T]) -> bool + Sync,
{
    assert!(
        cuts.first() == Some(&0) && *cuts.last().expect("at least one cut") == out.len(),
        "cuts must span 0..out.len()"
    );
    assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts must ascend");
    let chunks = cuts.len() - 1;
    let abort = AtomicBool::new(false);
    if chunks <= 1 {
        let ctx = ChunkCtx {
            index: 0,
            start: 0,
            abort: &abort,
        };
        return f(&ctx, out);
    }
    record_run(chunks, out.len());
    let ok = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks);
        let mut rest = out;
        let mut consumed = 0usize;
        for c in 0..chunks {
            let (mine, tail) = rest.split_at_mut(cuts[c + 1] - cuts[c]);
            rest = tail;
            let f = &f;
            let abort = &abort;
            let start = consumed;
            consumed += mine.len();
            handles.push(scope.spawn(move |_| {
                let ctx = ChunkCtx {
                    index: c,
                    start,
                    abort,
                };
                if !f(&ctx, mine) {
                    abort.store(true, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().expect("fill worker panicked");
        }
    })
    .is_ok();
    ok && !abort.load(Ordering::Relaxed)
}

fn record_run(workers: usize, items: usize) {
    let o = obs();
    o.jobs.incr(1);
    o.workers.incr(workers as u64);
    o.items.incr(items as u64);
    if star_obs::flightrec::enabled() {
        star_obs::flightrec::record(
            "pool.dispatch",
            "pool",
            &[
                ("workers", star_obs::FieldValue::U64(workers as u64)),
                ("items", star_obs::FieldValue::U64(items as u64)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = sweep(inputs, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(sweep(empty, |&x| x).is_empty());
        assert_eq!(sweep(vec![7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn chunk_cuts_partition_evenly() {
        assert_eq!(chunk_cuts(10, 3), vec![0, 4, 7, 10]);
        assert_eq!(chunk_cuts(9, 3), vec![0, 3, 6, 9]);
        assert_eq!(chunk_cuts(2, 5), vec![0, 1, 2]); // clamped to len
        assert_eq!(chunk_cuts(0, 4), vec![0, 0]);
        assert_eq!(chunk_cuts(5, 1), vec![0, 5]);
        for (len, chunks) in [(53, 7), (1, 1), (256, 8), (255, 8)] {
            let cuts = chunk_cuts(len, chunks);
            assert_eq!(*cuts.first().unwrap(), 0);
            assert_eq!(*cuts.last().unwrap(), len);
            let sizes: Vec<usize> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced within one: {sizes:?}");
        }
    }

    #[test]
    fn try_map_preserves_order_across_worker_counts() {
        for workers in [1usize, 2, 4, 7] {
            let out = try_map_indexed(53, workers, |i| Some(i * 3)).unwrap();
            assert_eq!(out.len(), 53);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * 3, "workers={workers}");
            }
        }
    }

    #[test]
    fn try_map_aborts_on_failure_in_any_mode() {
        for workers in [1usize, 4] {
            assert!(try_map_indexed(40, workers, |i| (i != 17).then_some(i)).is_none());
        }
        // Failure at the very first and very last index.
        assert!(try_map_indexed(40, 4, |i| (i != 0).then_some(i)).is_none());
        assert!(try_map_indexed(40, 4, |i| (i != 39).then_some(i)).is_none());
    }

    #[test]
    fn workers_for_honors_override_and_batching() {
        // Auto: small inputs stay serial, large ones batch.
        set_threads(0);
        assert_eq!(workers_for(10, 256), 1);
        assert!(workers_for(4096, 256) >= 1);
        assert!(workers_for(1 << 20, 1) <= MAX_AUTO_WORKERS.max(threads()));
        // Override wins, clamped to the item count.
        set_threads(4);
        assert_eq!(workers_for(100, 256), 4);
        assert_eq!(workers_for(2, 256), 2);
        assert_eq!(configured_threads(), Some(4));
        set_threads(0);
        assert_eq!(configured_threads(), None);
    }

    #[test]
    fn workers_for_degenerate_boundaries() {
        // The exact boundaries that silently collapsed the bench path.
        set_threads(0);
        // items strictly below the batch minimum: serial.
        assert_eq!(workers_for(255, 256), 1);
        // At the minimum: one worker has exactly its quota.
        assert_eq!(workers_for(256, 256), 1);
        // One short of two quotas: still one worker (floor semantics).
        assert_eq!(workers_for(511, 256), 1);
        // Two quotas: fans out iff the host has a second core.
        assert_eq!(workers_for(512, 256), 2.min(threads()));
        // min_items_per_worker == 0 is treated as 1, not a panic.
        assert_eq!(workers_for(3, 0), 3.min(threads()).min(MAX_AUTO_WORKERS));
        // Zero items never fans out — with or without an override (an
        // override used to be clamped into the empty range 1..=0).
        assert_eq!(workers_for(0, 256), 1);
        set_threads(8);
        assert_eq!(workers_for(0, 256), 1);
        // set_threads(1) forces serial; set_threads(0) restores auto —
        // the two must not be conflated.
        set_threads(1);
        assert_eq!(workers_for(1 << 20, 1), 1);
        assert_eq!(configured_threads(), Some(1));
        set_threads(0);
        assert!(workers_for(1 << 20, 1) >= 1);
        assert_eq!(configured_threads(), None);
    }

    #[test]
    fn fill_chunks_fills_disjoint_slices() {
        let mut out = vec![0usize; 103];
        let cuts = chunk_cuts(out.len(), 4);
        let ok = try_fill_chunks(&mut out, &cuts, |ctx, slice| {
            for (k, slot) in slice.iter_mut().enumerate() {
                *slot = (ctx.start + k) * 2;
            }
            true
        });
        assert!(ok);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn fill_chunks_serial_and_aborting() {
        // Single chunk: inline, no metrics.
        let jobs0 = star_obs::counter("pool.jobs").get();
        let mut out = vec![0u8; 16];
        assert!(try_fill_chunks(&mut out, &[0, 16], |_, s| {
            s.fill(7);
            true
        }));
        assert_eq!(out, vec![7u8; 16]);
        assert_eq!(star_obs::counter("pool.jobs").get(), jobs0);
        // A failing chunk aborts the whole run.
        let cuts = chunk_cuts(out.len(), 4);
        assert!(!try_fill_chunks(&mut out, &cuts, |ctx, _| ctx.index != 2));
        // Cooperative abort is visible to sibling chunks.
        let cuts = chunk_cuts(out.len(), 2);
        let ok = try_fill_chunks(&mut out, &cuts, |ctx, s| {
            if ctx.index == 0 {
                return false;
            }
            // The sibling eventually observes the abort flag.
            for _ in 0..1_000_000 {
                if ctx.aborted() {
                    break;
                }
                std::hint::spin_loop();
            }
            s.fill(1);
            true
        });
        assert!(!ok);
    }

    #[test]
    #[should_panic(expected = "cuts must span")]
    fn fill_chunks_rejects_bad_cuts() {
        let mut out = vec![0u8; 8];
        try_fill_chunks(&mut out, &[0, 4], |_, _| true);
    }

    #[test]
    fn pool_metrics_record_fanout() {
        let jobs0 = star_obs::counter("pool.jobs").get();
        let workers0 = star_obs::counter("pool.workers").get();
        let items0 = star_obs::counter("pool.items").get();
        let _ = try_map_indexed(64, 3, Some);
        let mut out = vec![0u8; 64];
        assert!(try_fill_chunks(&mut out, &chunk_cuts(64, 3), |_, _| true));
        assert!(star_obs::counter("pool.jobs").get() >= jobs0 + 2);
        assert!(star_obs::counter("pool.workers").get() >= workers0 + 6);
        assert!(star_obs::counter("pool.items").get() >= items0 + 128);
    }
}
