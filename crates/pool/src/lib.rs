//! # star-pool
//!
//! The workspace's shared work pool: order-preserving parallel maps over
//! scoped threads, with a process-wide thread-count knob.
//!
//! Promoted out of `star-sim` so that both the simulator's parameter
//! sweeps *and* the core embedder's per-block path materialization share
//! one scheduling policy (and `star-ring` need not depend on the
//! simulator). Work is interleaved round-robin across workers: item costs
//! in this workspace are roughly uniform (one memoized oracle query, or
//! one independent embed), so static interleaving balances well without
//! any shared mutable state.
//!
//! ## Thread-count policy
//!
//! [`set_threads`] installs a process-wide override (`0` restores auto).
//! Under auto, [`sweep`] uses one worker per item up to the hardware
//! parallelism, while fine-grained callers use [`workers_for`] with a
//! minimum batch size per worker so that small inputs stay serial and
//! large ones cap out before the global allocator becomes the bottleneck.
//! An explicit override wins over both heuristics — `--threads 1` forces
//! every parallel path in the process serial, which is how the
//! byte-identical serial-vs-parallel conformance tests are driven.
//!
//! ## Utilization metrics
//!
//! Every parallel run records three `star-obs` counters: `pool.jobs`
//! (parallel invocations), `pool.workers` (scoped threads spawned) and
//! `pool.items` (work items processed), so sweep throughput and worker
//! fan-out are visible in any metrics snapshot.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Auto-mode cap on workers for fine-grained (per-block) fan-out; beyond
/// this the global allocator dominates. Explicit [`set_threads`] overrides
/// it.
pub const MAX_AUTO_WORKERS: usize = 8;

/// Process-wide thread override; 0 means "auto".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

struct PoolObs {
    jobs: star_obs::Counter,
    workers: star_obs::Counter,
    items: star_obs::Counter,
}

fn obs() -> &'static PoolObs {
    static OBS: OnceLock<PoolObs> = OnceLock::new();
    OBS.get_or_init(|| PoolObs {
        jobs: star_obs::counter("pool.jobs"),
        workers: star_obs::counter("pool.workers"),
        items: star_obs::counter("pool.items"),
    })
}

/// Sets the process-wide worker-thread count for all pool entry points.
/// `0` restores the automatic policy (hardware parallelism with
/// per-caller batching heuristics). Takes effect for subsequent calls;
/// in-flight parallel runs are unaffected.
pub fn set_threads(threads: usize) {
    CONFIGURED.store(threads, Ordering::Release);
}

/// The explicit thread override, if one is installed.
pub fn configured_threads() -> Option<usize> {
    match CONFIGURED.load(Ordering::Acquire) {
        0 => None,
        t => Some(t),
    }
}

/// The resolved thread budget: the explicit override, or the hardware
/// parallelism.
pub fn threads() -> usize {
    configured_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Worker count for a fine-grained run of `items` uniform work items.
///
/// With an explicit [`set_threads`] override the override wins (clamped
/// to the item count). Under auto, allots at least
/// `min_items_per_worker` items to each worker and caps the fan-out at
/// [`MAX_AUTO_WORKERS`] and the hardware parallelism — so small inputs
/// run serially and large ones stop scaling before the allocator
/// saturates.
pub fn workers_for(items: usize, min_items_per_worker: usize) -> usize {
    if items == 0 {
        return 1;
    }
    match configured_threads() {
        Some(t) => t.clamp(1, items),
        None => (items / min_items_per_worker.max(1))
            .min(threads())
            .clamp(1, MAX_AUTO_WORKERS),
    }
}

/// Applies `f` to every input in parallel, preserving input order in the
/// output. Worker count is `threads()` clamped to the input size; panics
/// in workers propagate to the caller.
pub fn sweep<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads().clamp(1, n);
    if workers == 1 {
        return inputs.iter().map(f).collect();
    }
    record_run(workers, n);

    // Each worker w handles indices w, w + workers, w + 2*workers, ...
    let worker_outputs: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let inputs = &inputs;
                let f = &f;
                scope.spawn(move |_| {
                    (w..n)
                        .step_by(workers)
                        .map(|i| (i, f(&inputs[i])))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope failed");

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for chunk in worker_outputs {
        for (i, r) in chunk {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index computed"))
        .collect()
}

/// Computes `f(0..len)` on `workers` threads, preserving index order, and
/// returns `None` as soon as any item fails (a cooperative abort flag
/// stops the remaining workers early). `workers <= 1` runs inline with no
/// thread or metric overhead — callers pick the count via
/// [`workers_for`].
pub fn try_map_indexed<R, F>(len: usize, workers: usize, f: F) -> Option<Vec<R>>
where
    R: Send,
    F: Fn(usize) -> Option<R> + Sync,
{
    if workers <= 1 || len < 2 {
        return (0..len).map(f).collect();
    }
    let workers = workers.min(len);
    record_run(workers, len);
    let abort = AtomicBool::new(false);
    let results: Vec<Vec<(usize, Option<R>)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let abort = &abort;
                scope.spawn(move |_| {
                    let mut chunk = Vec::with_capacity(len / workers + 1);
                    for i in (w..len).step_by(workers) {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let r = f(i);
                        if r.is_none() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        chunk.push((i, r));
                    }
                    chunk
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
    .expect("pool scope failed");
    if abort.load(Ordering::Relaxed) {
        return None;
    }
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for chunk in results {
        for (i, r) in chunk {
            out[i] = Some(r?);
        }
    }
    out.into_iter().collect()
}

fn record_run(workers: usize, items: usize) {
    let o = obs();
    o.jobs.incr(1);
    o.workers.incr(workers as u64);
    o.items.incr(items as u64);
    if star_obs::flightrec::enabled() {
        star_obs::flightrec::record(
            "pool.dispatch",
            "pool",
            &[
                ("workers", star_obs::FieldValue::U64(workers as u64)),
                ("items", star_obs::FieldValue::U64(items as u64)),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = sweep(inputs, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn sweep_handles_empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(sweep(empty, |&x| x).is_empty());
        assert_eq!(sweep(vec![7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn try_map_preserves_order_across_worker_counts() {
        for workers in [1usize, 2, 4, 7] {
            let out = try_map_indexed(53, workers, |i| Some(i * 3)).unwrap();
            assert_eq!(out.len(), 53);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * 3, "workers={workers}");
            }
        }
    }

    #[test]
    fn try_map_aborts_on_failure_in_any_mode() {
        for workers in [1usize, 4] {
            assert!(try_map_indexed(40, workers, |i| (i != 17).then_some(i)).is_none());
        }
        // Failure at the very first and very last index.
        assert!(try_map_indexed(40, 4, |i| (i != 0).then_some(i)).is_none());
        assert!(try_map_indexed(40, 4, |i| (i != 39).then_some(i)).is_none());
    }

    #[test]
    fn workers_for_honors_override_and_batching() {
        // Auto: small inputs stay serial, large ones batch.
        set_threads(0);
        assert_eq!(workers_for(10, 256), 1);
        assert!(workers_for(4096, 256) >= 1);
        assert!(workers_for(1 << 20, 1) <= MAX_AUTO_WORKERS.max(threads()));
        // Override wins, clamped to the item count.
        set_threads(4);
        assert_eq!(workers_for(100, 256), 4);
        assert_eq!(workers_for(2, 256), 2);
        assert_eq!(configured_threads(), Some(4));
        set_threads(0);
        assert_eq!(configured_threads(), None);
    }

    #[test]
    fn pool_metrics_record_fanout() {
        let jobs0 = star_obs::counter("pool.jobs").get();
        let _ = try_map_indexed(64, 3, Some);
        assert!(star_obs::counter("pool.jobs").get() > jobs0);
    }
}
