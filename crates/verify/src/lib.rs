//! # star-verify
//!
//! Verification utilities for ring embeddings in faulty star graphs.
//!
//! Every construction in this workspace returns machine-checkable objects;
//! this crate holds the checkers:
//!
//! - [`check_ring`] / [`check_path`] — a vertex sequence is a valid,
//!   healthy, simple ring/path of `S_n` (adjacency, distinctness, fault
//!   avoidance, edge health).
//! - [`invariants`] — the paper's super-ring properties **(P1)**, **(P2)**,
//!   **(P3)** (Lemma 3) checked against a fault set.
//! - [`exhaustive`] — brute-force longest healthy cycles for small `n`
//!   (optimality witnesses for Experiment E2).
//! - [`lemmas`] — the paper's structural Lemmas 1, 5, 6 as executable
//!   predicates, validated exhaustively on small configurations.
//! - [`bounds`] — the closed-form bounds of the paper and of the prior art
//!   it compares against.
//! - [`certificate`] — portable, re-checkable ring certificates.
//! - [`audit`] — the differential correctness gate: seeded sweeps
//!   cross-checking the embedder against the exhaustive oracle, the
//!   certificate layer, and the prior-art baselines, plus the repair
//!   chaos soak.

mod ring_check;

pub mod audit;
pub mod bounds;
pub mod certificate;
pub mod exhaustive;
pub mod invariants;
pub mod lemmas;

pub use ring_check::{check_path, check_ring, VerifyError};
