//! Closed-form ring-length bounds from the paper and the prior art.

use star_perm::factorial;

/// The paper's Theorem 1: the guaranteed healthy ring length in `S_n` with
/// `fv <= n-3` vertex faults, `n >= 4`: `n! - 2·fv`.
pub fn hsieh_chen_ho_length(n: usize, fv: usize) -> u64 {
    factorial(n) - 2 * fv as u64
}

/// Tseng–Chang–Sheu's vertex-fault bound that the paper improves:
/// `n! - 4·fv` for `fv <= n-3`.
pub fn tseng_vertex_length(n: usize, fv: usize) -> u64 {
    factorial(n) - 4 * fv as u64
}

/// Tseng–Chang–Sheu's edge-fault result: a full Hamiltonian ring of length
/// `n!` when `fe <= n-3` (edge faults cost nothing).
pub fn tseng_edge_length(n: usize, _fe: usize) -> u64 {
    factorial(n)
}

/// Latifi–Bagherzadeh: `n! - m!`, where `m` is the order of the smallest
/// embedded sub-star containing every fault.
pub fn latifi_length(n: usize, m: usize) -> u64 {
    factorial(n) - factorial(m)
}

/// The bipartite **upper** bound: when all `fv` faults lie in one partite
/// set, no healthy cycle can exceed `n! - 2·fv` vertices. (A cycle
/// alternates partite sets, so it uses equally many vertices from each
/// side, and one side has only `n!/2 - fv` healthy vertices.)
pub fn bipartite_upper_bound(n: usize, fv_same_side: usize) -> u64 {
    let side = factorial(n) / 2;
    2 * (side - fv_same_side as u64)
}

/// The worst-case fault budget for which a maximum-length ring is still
/// guaranteed: `n - 3` (since `S_n` is `(n-1)`-regular).
pub fn max_fault_budget(n: usize) -> usize {
    n.saturating_sub(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bound_matches_bipartite_bound() {
        // The construction is worst-case optimal: guaranteed length equals
        // the bipartite ceiling for same-side faults.
        for n in 4..=9 {
            for fv in 0..=max_fault_budget(n) {
                assert_eq!(hsieh_chen_ho_length(n, fv), bipartite_upper_bound(n, fv));
            }
        }
    }

    #[test]
    fn paper_dominates_prior_art() {
        for n in 4..=9 {
            for fv in 1..=max_fault_budget(n) {
                assert!(hsieh_chen_ho_length(n, fv) > tseng_vertex_length(n, fv));
            }
        }
        // vs Latifi–Bagherzadeh: the paper wins whenever 2·fv < m!, i.e.
        // unless the faults cluster extremely tightly. Four faults spanning
        // an S_5 cost Latifi 120 vertices but the paper only 8:
        assert!(hsieh_chen_ho_length(7, 4) > latifi_length(7, 5));
        // ...and conversely, 4 faults packed inside an S_3 (m! = 6 < 8) is
        // the one regime where the clustered bound is stronger:
        assert!(latifi_length(7, 3) > hsieh_chen_ho_length(7, 4));
    }

    #[test]
    fn concrete_values() {
        assert_eq!(hsieh_chen_ho_length(6, 3), 714);
        assert_eq!(tseng_vertex_length(6, 3), 708);
        assert_eq!(tseng_edge_length(6, 3), 720);
        assert_eq!(latifi_length(6, 3), 714);
        assert_eq!(max_fault_budget(6), 3);
        assert_eq!(max_fault_budget(3), 0);
    }
}
