//! The differential correctness gate (**star-audit**).
//!
//! Runs seeded scenario sweeps and cross-checks `embed_longest_ring`
//! against every independent source of truth this workspace has:
//!
//! 1. **The contract** — the ring must pass [`crate::check_ring`] and hit
//!    the exact Theorem-1 length `n! - 2|F_v|`.
//! 2. **The certificate layer** — a STARRING-CERT v1 certificate built
//!    from the result must re-verify from its text form alone, and its
//!    summary must agree with the scenario.
//! 3. **The exhaustive oracle** (`n <= 5`) — branch-and-bound longest
//!    healthy cycles; when the search completes, its optimum must equal
//!    the embedder's length exactly, otherwise it is a lower bound the
//!    embedder must meet.
//! 4. **The prior-art baselines** — Tseng-style rings must be valid and
//!    never longer than the paper's (`n! - 4|F_v|` vs `n! - 2|F_v|`), and
//!    the Latifi–Bagherzadeh construction (on clustered scenarios, where
//!    it applies) must be valid and pay its `m!` deficiency.
//!
//! Every scenario is derived from a seed, so any mismatch report is a
//! one-line reproduction recipe. The sweep also records per-`n` embed
//! latencies; the CLI maps them onto the committed `BENCH_*.json` schema
//! (the mapping lives in the CLI because `star-bench` depends on this
//! crate).

use std::time::Instant;

use star_fault::{gen, FaultSet};
use star_perm::factorial;

use crate::certificate;
use crate::exhaustive;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Dimensions `4..=max_n` are swept.
    pub max_n: usize,
    /// Seeded scenarios per dimension.
    pub seeds: u64,
    /// Node budget for the `n = 5` exhaustive search (the `n = 4` search
    /// is always exact).
    pub exhaustive_budget: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            max_n: 6,
            seeds: 200,
            exhaustive_budget: 2_000_000,
        }
    }
}

/// One disagreement between the embedder and a reference. A correct
/// build produces none.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Dimension of the failing scenario.
    pub n: usize,
    /// Seed that reproduces it.
    pub seed: u64,
    /// Which cross-check failed and how.
    pub description: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n={} seed={}: {}", self.n, self.seed, self.description)
    }
}

/// Per-dimension sweep outcome (timings cover the embed call only).
#[derive(Debug, Clone)]
pub struct AuditCase {
    /// Dimension.
    pub n: usize,
    /// Scenarios embedded.
    pub scenarios: usize,
    /// Scenarios additionally checked against the exhaustive oracle.
    pub oracle_checked: usize,
    /// Certificates round-tripped.
    pub certificates: usize,
    /// Median embed latency (ns).
    pub median_ns: u64,
    /// p95 embed latency (ns).
    pub p95_ns: u64,
}

/// The full sweep outcome.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Per-dimension results.
    pub cases: Vec<AuditCase>,
    /// Every disagreement found (empty on a correct build).
    pub mismatches: Vec<Mismatch>,
}

impl AuditReport {
    /// Total scenarios swept.
    pub fn scenarios(&self) -> usize {
        self.cases.iter().map(|c| c.scenarios).sum()
    }

    /// `true` iff no cross-check disagreed.
    pub fn clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the differential sweep.
pub fn run(config: &AuditConfig) -> AuditReport {
    let mut report = AuditReport::default();
    for n in 4..=config.max_n {
        report
            .cases
            .push(audit_dimension(config, n, &mut report.mismatches));
    }
    report
}

fn audit_dimension(config: &AuditConfig, n: usize, mismatches: &mut Vec<Mismatch>) -> AuditCase {
    let budget = n - 3;
    let mut latencies: Vec<u64> = Vec::with_capacity(config.seeds as usize);
    let mut oracle_checked = 0;
    let mut certificates = 0;
    let mut scenarios = 0;
    for seed in 0..config.seeds {
        let mut fail = |description: String| {
            mismatches.push(Mismatch {
                n,
                seed,
                description,
            })
        };
        // Cycle through every legal fault count; every 5th scenario uses
        // the clustered generator so the Latifi baseline applies.
        let count = (seed as usize) % (budget + 1);
        let clustered = seed % 5 == 4 && count >= 1 && n >= 5;
        let faults = if clustered {
            gen::clustered_in_substar(n, count, 3, seed)
        } else {
            gen::random_vertex_faults(n, count, seed)
        };
        let faults = match faults {
            Ok(f) => f,
            Err(e) => {
                fail(format!("scenario generation failed: {e}"));
                continue;
            }
        };
        scenarios += 1;

        // 1. The embedder and its exact contract.
        let t0 = Instant::now();
        let embedded = star_ring::embed_longest_ring(n, &faults);
        latencies.push(t0.elapsed().as_nanos() as u64);
        let ring = match embedded {
            Ok(r) => r,
            Err(e) => {
                fail(format!("embed failed within budget ({count} faults): {e}"));
                continue;
            }
        };
        let expected = factorial(n) - 2 * count as u64;
        if ring.len() as u64 != expected {
            fail(format!(
                "ring length {} != n! - 2|F_v| = {expected}",
                ring.len()
            ));
        }
        if let Err(e) = crate::check_ring(n, ring.vertices(), &faults) {
            fail(format!("ring failed validity check: {e}"));
        }

        // 2. Certificate round trip: text form alone must re-verify and
        // describe the scenario.
        let cert = certificate::certificate_for(n, &faults, ring.vertices());
        match certificate::verify_certificate(&cert) {
            Ok(summary) => {
                certificates += 1;
                if summary.n != n
                    || summary.fault_count != count
                    || summary.ring_len != ring.len()
                    || !summary.at_guarantee
                {
                    fail(format!(
                        "certificate summary disagrees: n {} faults {} len {} at_guarantee {}",
                        summary.n, summary.fault_count, summary.ring_len, summary.at_guarantee
                    ));
                }
            }
            Err(e) => fail(format!("certificate failed to re-verify: {e}")),
        }

        // 3. Exhaustive oracle (n <= 5; every scenario for n = 4, every
        // 7th for n = 5 to keep the sweep fast).
        if n == 4 || (n == 5 && seed % 7 == 0) {
            let budget = if n == 4 {
                u64::MAX
            } else {
                config.exhaustive_budget
            };
            let best = exhaustive::longest_healthy_cycle(n, &faults, budget);
            oracle_checked += 1;
            if best.optimal && best.cycle.len() != ring.len() {
                fail(format!(
                    "exhaustive optimum {} != embedded {}",
                    best.cycle.len(),
                    ring.len()
                ));
            } else if best.cycle.len() > ring.len() {
                fail(format!(
                    "exhaustive search found a longer healthy cycle: {} > {}",
                    best.cycle.len(),
                    ring.len()
                ));
            }
        }

        // 4a. Tseng baseline: valid, and dominated by the paper's bound.
        match star_baselines::tseng_vertex::tseng_vertex_ring(n, &faults) {
            Ok(t) => {
                if let Err(e) = crate::check_ring(n, t.vertices(), &faults) {
                    fail(format!("tseng ring invalid: {e}"));
                }
                if t.len() > ring.len() {
                    fail(format!(
                        "tseng ring longer than the paper's: {} > {}",
                        t.len(),
                        ring.len()
                    ));
                }
            }
            Err(e) => fail(format!("tseng baseline failed within budget: {e}")),
        }

        // 4b. Latifi baseline where it applies (clustered, >= 1 fault):
        // valid and pays exactly n! - m!. Dominance by the paper's ring
        // holds only when m! >= 2|F_v|: a cluster tighter than that (e.g.
        // two faults sharing one S_2) discards fewer vertices than the
        // paper's per-fault toll, and Latifi legitimately wins — the
        // first sweep of this gate caught exactly that corner.
        if clustered {
            match star_baselines::latifi::latifi_ring(n, &faults) {
                Ok(l) => {
                    if let Err(e) = crate::check_ring(n, l.ring.vertices(), &faults) {
                        fail(format!("latifi ring invalid: {e}"));
                    }
                    let promised = factorial(n) - factorial(l.m);
                    if l.ring.len() as u64 != promised {
                        fail(format!(
                            "latifi ring length {} != n! - m! = {promised}",
                            l.ring.len()
                        ));
                    }
                    if factorial(l.m) >= 2 * count as u64 && l.ring.len() > ring.len() {
                        fail(format!(
                            "latifi ring longer than the paper's despite m! >= 2|F_v|: {} > {}",
                            l.ring.len(),
                            ring.len()
                        ));
                    }
                }
                // The minimal cluster can degenerate (faults fitting only
                // in S_n itself after the bipartite floor) — that is the
                // baseline declining, not a mismatch.
                Err(star_baselines::BaselineError::NotClustered) => {}
                Err(e) => fail(format!("latifi baseline failed on clustered faults: {e}")),
            }
        }
    }
    latencies.sort_unstable();
    AuditCase {
        n,
        scenarios,
        oracle_checked,
        certificates,
        median_ns: percentile(&latencies, 0.5),
        p95_ns: percentile(&latencies, 0.95),
    }
}

/// Deterministic chaos soak: drives [`star_ring::repair::MaintainedRing`]
/// through `injections` seeded fault arrivals, asserting the
/// `n! - 2|F_v|` contract and full ring validity after every successful
/// repair, and state preservation after every refused one. Returns the
/// mismatch list (empty on a correct build) plus (local, global, refused)
/// outcome counts.
pub fn soak_repairs(n: usize, injections: usize, seed: u64) -> (Vec<Mismatch>, (u64, u64, u64)) {
    use star_ring::repair::{MaintainedRing, RepairOutcome};

    let mut mismatches = Vec::new();
    let mut counts = (0u64, 0u64, 0u64);
    let mut mr = match MaintainedRing::new(n, &FaultSet::empty(n)) {
        Ok(mr) => mr,
        Err(e) => {
            mismatches.push(Mismatch {
                n,
                seed,
                description: format!("initial embedding failed: {e}"),
            });
            return (mismatches, counts);
        }
    };
    let mut epoch_seed = seed;
    for i in 0..injections {
        // Pick a seeded on-ring victim. The ring shrinks as faults land,
        // so index through the current ring.
        let ring = mr.ring();
        let vs = ring.vertices();
        epoch_seed = epoch_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let victim = vs[(epoch_seed >> 11) as usize % vs.len()];
        let before_len = mr.len();
        let before_faults = mr.faults().vertex_fault_count();
        match mr.fail(victim) {
            Ok(outcome) => {
                match outcome {
                    RepairOutcome::Local { .. } => counts.0 += 1,
                    RepairOutcome::Global => counts.1 += 1,
                }
                let expected = factorial(n) - 2 * mr.faults().vertex_fault_count() as u64;
                if mr.len() as u64 != expected {
                    mismatches.push(Mismatch {
                        n,
                        seed,
                        description: format!(
                            "injection {i}: repaired ring length {} != n! - 2|F_v| = {expected}",
                            mr.len()
                        ),
                    });
                }
                if let Err(e) = crate::check_ring(n, mr.ring().vertices(), mr.faults()) {
                    mismatches.push(Mismatch {
                        n,
                        seed,
                        description: format!("injection {i}: repaired ring invalid: {e}"),
                    });
                }
            }
            Err(_) => {
                // A refused injection (beyond-budget exhaustion) must
                // leave the maintained state exactly as it was.
                counts.2 += 1;
                if mr.len() != before_len || mr.faults().vertex_fault_count() != before_faults {
                    mismatches.push(Mismatch {
                        n,
                        seed,
                        description: format!(
                            "injection {i}: refused repair mutated state \
                             (len {} -> {}, faults {} -> {})",
                            before_len,
                            mr.len(),
                            before_faults,
                            mr.faults().vertex_fault_count()
                        ),
                    });
                }
                // A refused ring is saturated for this victim pattern;
                // start a fresh epoch so the soak keeps exercising
                // repairs instead of re-refusing forever.
                if let Ok(fresh) = MaintainedRing::new(n, &FaultSet::empty(n)) {
                    mr = fresh;
                }
            }
        }
    }
    (mismatches, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_clean() {
        let report = run(&AuditConfig {
            max_n: 5,
            seeds: 24,
            exhaustive_budget: 200_000,
        });
        assert!(
            report.clean(),
            "differential mismatches: {:?}",
            report.mismatches
        );
        assert_eq!(report.cases.len(), 2);
        assert!(report.cases.iter().all(|c| c.scenarios == 24));
        assert!(
            report.cases[0].oracle_checked == 24,
            "n=4 is always oracle-checked"
        );
        assert!(report.cases.iter().all(|c| c.certificates == c.scenarios));
    }

    #[test]
    fn chaos_soak_holds_the_contract_after_every_repair() {
        // The tier-1 soak: hundreds of seeded injections at n = 6; the
        // nightly job runs the full thousands-of-injections version.
        let (mismatches, (local, global, refused)) = soak_repairs(6, 300, 0xC0FFEE);
        assert!(mismatches.is_empty(), "soak mismatches: {mismatches:?}");
        assert!(local + global > 0, "soak never repaired anything");
        // Statistically certain at 300 injections: both repair paths and
        // the beyond-budget refusal path all fire.
        assert!(local > 0, "no local repairs exercised");
        assert!(refused + global > 0, "no fallback paths exercised");
    }

    /// The nightly full soak: thousands of injections across n = 6..=8.
    /// Run with `cargo test -p star-verify -- --ignored full_soak`.
    #[test]
    #[ignore = "minutes-long; run by the nightly workflow"]
    fn full_soak_n_up_to_8() {
        for (n, injections) in [(6usize, 2000usize), (7, 1500), (8, 600)] {
            let (mismatches, (local, global, refused)) =
                soak_repairs(n, injections, 0xDEADBEEF + n as u64);
            assert!(
                mismatches.is_empty(),
                "n={n} soak mismatches: {mismatches:?}"
            );
            assert!(local > 0 && local + global + refused == injections as u64);
        }
    }
}
