//! Computational validation of the paper's structural lemmas.
//!
//! The embedder *relies* on Lemmas 1, 5 and 6; this module states each
//! lemma as an executable predicate so the test suite can confirm them
//! exhaustively on small configurations (and so a skeptical reader can
//! check any configuration interactively). Lemma 4 is validated separately
//! by the exhaustive oracle sweep in `star-ring`.

use star_graph::supervertex::SuperEdge;
use star_graph::Pattern;
use star_perm::Perm;

/// **Lemma 1.** Let `U, V, W` be consecutive `r`-vertices on an `R^r`
/// (`V` adjacent to both), `p = dif(U,V)`, `q = dif(V,W)`, and suppose
/// `u_p != w_q`. Then after partitioning `V` at any free position `j != 0`
/// every sub-vertex of `V` is connected to `U` or to `W`.
///
/// Returns `true` iff the conclusion holds for the given configuration
/// (the caller chooses configurations satisfying the hypothesis; the
/// predicate itself just checks the conclusion).
pub fn lemma1_conclusion(u: &Pattern, v: &Pattern, w: &Pattern, j: usize) -> bool {
    let subs = match star_graph::partition::i_partition(v, j) {
        Ok(s) => s,
        Err(_) => return false,
    };
    subs.iter().all(|sub| {
        let to_u = u
            .free_symbols()
            .contains(sub.fixed_symbol(j).expect("pinned by partition"));
        let to_w = w
            .free_symbols()
            .contains(sub.fixed_symbol(j).expect("pinned by partition"));
        // A sub-vertex connects to a neighbor super-vertex iff its new
        // pinned symbol is free there (the neighbor then owns the adjacent
        // sub-pattern with the same symbol at j).
        to_u || to_w
    })
}

/// The hypothesis of Lemma 1 (and property (P2)): `u_{dif(U,V)} !=
/// w_{dif(V,W)}`.
pub fn lemma1_hypothesis(u: &Pattern, v: &Pattern, w: &Pattern) -> Option<bool> {
    let p = u.dif(v)?;
    let q = v.dif(w)?;
    Some(u.fixed_symbol(p) != w.fixed_symbol(q))
}

/// The 6-cycle of a 3-vertex, as the cyclic vertex order `c_0..c_5`.
pub fn six_cycle(u: &Pattern) -> Vec<Perm> {
    assert_eq!(u.r(), 3, "six_cycle takes a 3-vertex");
    let start = u.representative();
    let mut cycle = vec![start];
    let mut prev = start;
    let mut cur = start
        .neighbors()
        .find(|nb| u.contains(nb))
        .expect("a 3-vertex has internal edges");
    while cur != start {
        cycle.push(cur);
        let next = cur
            .neighbors()
            .find(|nb| u.contains(nb) && *nb != prev)
            .expect("interior vertices of a 6-cycle have two block neighbors");
        prev = cur;
        cur = next;
    }
    debug_assert_eq!(cycle.len(), 6);
    cycle
}

/// **Lemma 5.** If `U` and `V` are adjacent 3-vertices, exactly two
/// vertices of `U` are connected to `V`, and they are antipodal
/// (`c_j` and `c_{j+3}`) on `U`'s 6-cycle.
pub fn lemma5_holds(u: &Pattern, v: &Pattern) -> bool {
    let Ok(edge) = SuperEdge::between(*u, *v) else {
        return false;
    };
    let cycle = six_cycle(u);
    let cross_positions: Vec<usize> = (0..6)
        .filter(|&i| edge.is_cross_vertex(&cycle[i]))
        .collect();
    cross_positions.len() == 2 && (cross_positions[1] - cross_positions[0]) == 3
}

/// **Lemma 6.** If `V` is adjacent to both `U` and `W` and the (P2)
/// condition `u_{dif(U,V)} != w_{dif(V,W)}` holds, the two vertices of `V`
/// connected to `U` are disjoint from the two connected to `W`.
pub fn lemma6_holds(u: &Pattern, v: &Pattern, w: &Pattern) -> bool {
    let (Ok(to_u), Ok(to_w)) = (SuperEdge::between(*v, *u), SuperEdge::between(*v, *w)) else {
        return false;
    };
    let cross_u: Vec<Perm> = v.vertices().filter(|x| to_u.is_cross_vertex(x)).collect();
    let cross_w: Vec<Perm> = v.vertices().filter(|x| to_w.is_cross_vertex(x)).collect();
    cross_u.iter().all(|x| !cross_w.contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::partition::partition_sequence;

    /// All 3-vertices of S_5 under a fixed (1,2)-partition, for exhaustive
    /// lemma sweeps.
    fn three_vertices_s5() -> Vec<Pattern> {
        partition_sequence(&Pattern::full(5), &[1, 2]).unwrap()
    }

    #[test]
    fn six_cycle_really_is_the_block() {
        for u in three_vertices_s5().into_iter().take(6) {
            let cycle = six_cycle(&u);
            assert_eq!(cycle.len(), 6);
            for i in 0..6 {
                assert!(cycle[i].is_adjacent(&cycle[(i + 1) % 6]));
                assert!(u.contains(&cycle[i]));
            }
        }
    }

    #[test]
    fn lemma5_exhaustive_s5() {
        let all = three_vertices_s5();
        let mut pairs = 0;
        for u in &all {
            for v in &all {
                if u.is_adjacent(v) {
                    assert!(lemma5_holds(u, v), "Lemma 5 fails for {u}, {v}");
                    pairs += 1;
                }
            }
        }
        assert!(pairs > 0, "sweep must cover adjacent pairs");
    }

    #[test]
    fn lemma6_exhaustive_s5() {
        let all = three_vertices_s5();
        let mut triples = 0;
        for u in &all {
            for v in &all {
                if !v.is_adjacent(u) {
                    continue;
                }
                for w in &all {
                    if w == u || !v.is_adjacent(w) {
                        continue;
                    }
                    if lemma1_hypothesis(u, v, w) == Some(true) {
                        assert!(lemma6_holds(u, v, w), "Lemma 6 fails for {u},{v},{w}");
                        triples += 1;
                    }
                }
            }
        }
        assert!(triples > 0);
    }

    #[test]
    fn lemma6_needs_the_hypothesis() {
        // The disjointness genuinely depends on (P2): find a triple
        // violating the hypothesis where the cross pairs overlap.
        let all = three_vertices_s5();
        let mut found_overlap = false;
        'outer: for u in &all {
            for v in &all {
                if !v.is_adjacent(u) {
                    continue;
                }
                for w in &all {
                    if w == u || !v.is_adjacent(w) {
                        continue;
                    }
                    if lemma1_hypothesis(u, v, w) == Some(false) && !lemma6_holds(u, v, w) {
                        found_overlap = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            found_overlap,
            "without (P2) the cross pairs can (and somewhere do) collide"
        );
    }

    #[test]
    fn lemma1_exhaustive_on_4_vertices_of_s6() {
        // 4-vertices of S_6 under a (1,3)-partition; check every U-V-W
        // path satisfying the hypothesis, partitioning V at each free
        // position.
        let all = partition_sequence(&Pattern::full(6), &[1, 3]).unwrap();
        let mut checked = 0;
        for u in all.iter().take(10) {
            for v in &all {
                if !v.is_adjacent(u) {
                    continue;
                }
                for w in &all {
                    if w == u || !v.is_adjacent(w) {
                        continue;
                    }
                    if lemma1_hypothesis(u, v, w) != Some(true) {
                        continue;
                    }
                    for j in v.free_positions().filter(|&j| j != 0) {
                        assert!(
                            lemma1_conclusion(u, v, w, j),
                            "Lemma 1 fails for {u},{v},{w} at j={j}"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0);
    }
}
