//! Exhaustive longest-healthy-cycle search: the optimality witness for
//! Experiment E2.
//!
//! For `n = 4` (24 vertices) the search is exact and fast; for `n = 5`
//! (120 vertices) a node budget turns it into a best-effort lower bound
//! plus an exhausted flag. Together with [`crate::bounds`] this certifies
//! that the paper's `n! - 2|F_v|` cannot be improved in the worst case.

use star_fault::FaultSet;
use star_graph::smallgraph::SmallGraph;
use star_perm::{factorial, Perm};

/// Result of an exhaustive longest-cycle search.
#[derive(Debug, Clone)]
pub struct LongestCycleResult {
    /// The best healthy cycle found (vertex sequence).
    pub cycle: Vec<Perm>,
    /// `true` iff the search completed, making `cycle` provably optimal.
    pub optimal: bool,
}

/// Longest healthy cycle in `S_n` avoiding the given vertex faults, by
/// branch-and-bound over the materialized graph. Exact when `budget` is not
/// exhausted. Intended for `n <= 5`.
pub fn longest_healthy_cycle(n: usize, faults: &FaultSet, budget: u64) -> LongestCycleResult {
    assert!(n <= 6, "exhaustive search is only sensible for small n");
    let g = SmallGraph::from_star(n);
    let total = factorial(n) as usize;
    let mut blocked = vec![false; total];
    for f in faults.vertices() {
        blocked[f.rank() as usize] = true;
    }
    let (cycle_ids, exhausted) = g.longest_cycle(&blocked, budget);
    let cycle = cycle_ids
        .into_iter()
        .map(|id| Perm::unrank(n, id as u32).expect("rank in range"))
        .collect();
    LongestCycleResult {
        cycle,
        optimal: !exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::check_ring;

    #[test]
    fn s4_no_faults_hamiltonian() {
        let faults = FaultSet::empty(4);
        let res = longest_healthy_cycle(4, &faults, u64::MAX);
        assert!(res.optimal);
        assert_eq!(res.cycle.len(), 24);
        check_ring(4, &res.cycle, &faults).unwrap();
    }

    #[test]
    fn s4_single_fault_matches_paper_bound_exactly() {
        // Any single fault: optimum is exactly 4! - 2 = 22 — the paper's
        // bound is achieved AND unbeatable.
        for fault_rank in [0u32, 5, 11, 23] {
            let f = Perm::unrank(4, fault_rank).unwrap();
            let faults = FaultSet::from_vertices(4, [f]).unwrap();
            let res = longest_healthy_cycle(4, &faults, u64::MAX);
            assert!(res.optimal);
            assert_eq!(
                res.cycle.len() as u64,
                bounds::hsieh_chen_ho_length(4, 1),
                "fault at {f}"
            );
            check_ring(4, &res.cycle, &faults).unwrap();
        }
    }

    #[test]
    fn budget_marks_non_optimal() {
        let res = longest_healthy_cycle(4, &FaultSet::empty(4), 50);
        assert!(!res.optimal);
    }
}
