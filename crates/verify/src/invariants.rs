//! The paper's super-ring invariants (Lemma 3): properties (P1), (P2), (P3)
//! of the `R^4`, checked against a concrete fault set.

use star_fault::FaultSet;
use star_graph::SuperRing;

/// Outcome of checking a super-ring against Lemma 3's requirements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperRingReport {
    /// (P1): every super-vertex contains at most one vertex fault.
    pub p1: bool,
    /// (P2): for consecutive `U, V, W`, `u_{dif(U,V)} != w_{dif(V,W)}`.
    pub p2: bool,
    /// (P3): no two consecutive super-vertices are both faulty.
    pub p3: bool,
    /// Number of faulty super-vertices on the ring.
    pub faulty_supervertices: usize,
    /// Largest number of faults found in a single super-vertex.
    pub max_faults_per_supervertex: usize,
}

impl SuperRingReport {
    /// `true` iff all three properties hold.
    pub fn all_hold(&self) -> bool {
        self.p1 && self.p2 && self.p3
    }
}

/// Checks (P1), (P2), (P3) for `ring` under `faults`.
pub fn check_super_ring(ring: &SuperRing, faults: &FaultSet) -> SuperRingReport {
    let len = ring.len();
    let fault_counts: Vec<usize> = ring
        .iter()
        .map(|p| faults.count_vertex_faults_in(p))
        .collect();
    let p1 = fault_counts.iter().all(|&c| c <= 1);
    let p3 = (0..len).all(|i| !(fault_counts[i] > 0 && fault_counts[(i + 1) % len] > 0));
    SuperRingReport {
        p1,
        p2: ring.satisfies_p2(),
        p3,
        faulty_supervertices: fault_counts.iter().filter(|&&c| c > 0).count(),
        max_faults_per_supervertex: fault_counts.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::Pattern;
    use star_perm::Perm;

    fn k5_ring() -> SuperRing {
        // Partition S_5 at position 4: five S_4's, pairwise adjacent.
        let pats: Vec<Pattern> = (1..=5)
            .map(|s| Pattern::full(5).sub(4, s).unwrap())
            .collect();
        SuperRing::new(pats).unwrap()
    }

    #[test]
    fn healthy_ring_has_all_properties() {
        let ring = k5_ring();
        let report = check_super_ring(&ring, &FaultSet::empty(5));
        assert!(report.all_hold());
        assert_eq!(report.faulty_supervertices, 0);
    }

    #[test]
    fn p1_fails_with_two_faults_in_one_block() {
        let ring = k5_ring();
        // Two faults in the block with symbol 5 at position 4.
        let f1 = Perm::from_digits(5, 12345);
        let f2 = Perm::from_digits(5, 21345);
        let faults = FaultSet::from_vertices(5, [f1, f2]).unwrap();
        let report = check_super_ring(&ring, &faults);
        assert!(!report.p1);
        assert_eq!(report.max_faults_per_supervertex, 2);
    }

    #[test]
    fn p3_fails_with_adjacent_faulty_blocks() {
        let ring = k5_ring();
        // Ring order is symbols 1,2,3,4,5 at position 4; faults in blocks
        // 1 and 2 (consecutive).
        let f1 = Perm::from_digits(5, 23451);
        let f2 = Perm::from_digits(5, 13452);
        let faults = FaultSet::from_vertices(5, [f1, f2]).unwrap();
        let report = check_super_ring(&ring, &faults);
        assert!(report.p1);
        assert!(!report.p3);
        assert_eq!(report.faulty_supervertices, 2);
    }

    #[test]
    fn p3_holds_with_separated_faulty_blocks() {
        let ring = k5_ring();
        // Faults in blocks 1 and 3 — not cyclically consecutive.
        let f1 = Perm::from_digits(5, 23451);
        let f2 = Perm::from_digits(5, 12453);
        let faults = FaultSet::from_vertices(5, [f1, f2]).unwrap();
        let report = check_super_ring(&ring, &faults);
        assert!(report.all_hold());
    }
}
