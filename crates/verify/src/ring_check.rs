//! Validity checks for embedded rings and paths.

use core::fmt;
use std::collections::HashSet;

use star_fault::FaultSet;
use star_perm::Perm;

/// Why a ring or path failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The sequence is empty or too short to be a ring.
    TooShort {
        /// Number of vertices supplied.
        len: usize,
    },
    /// A vertex has the wrong permutation size for `S_n`.
    WrongDimension {
        /// Index in the sequence.
        index: usize,
    },
    /// A vertex appears more than once.
    RepeatedVertex {
        /// Index of the second occurrence.
        index: usize,
        /// The repeated vertex.
        vertex: Perm,
    },
    /// Two consecutive vertices are not adjacent in `S_n`.
    NotAdjacent {
        /// Index of the first vertex of the offending step.
        index: usize,
    },
    /// A vertex on the ring is faulty.
    FaultyVertex {
        /// Index of the faulty vertex.
        index: usize,
        /// The vertex.
        vertex: Perm,
    },
    /// A step of the ring uses a faulty edge.
    FaultyEdge {
        /// Index of the first endpoint.
        index: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TooShort { len } => write!(f, "sequence of {len} vertices is too short"),
            VerifyError::WrongDimension { index } => {
                write!(f, "vertex at index {index} has the wrong dimension")
            }
            VerifyError::RepeatedVertex { index, vertex } => {
                write!(f, "vertex {vertex} repeated at index {index}")
            }
            VerifyError::NotAdjacent { index } => {
                write!(
                    f,
                    "vertices at indices {index}, {} are not adjacent",
                    index + 1
                )
            }
            VerifyError::FaultyVertex { index, vertex } => {
                write!(f, "faulty vertex {vertex} on ring at index {index}")
            }
            VerifyError::FaultyEdge { index } => {
                write!(f, "faulty edge used at step {index} -> {}", index + 1)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies that `vertices` is a simple, healthy **ring** of `S_n`: all
/// distinct healthy vertices, consecutive (and wrap-around) pairs adjacent
/// via healthy edges, and length at least 3 (the star graph's girth is 6,
/// so any real ring has length >= 6; 3 is the structural minimum for a
/// cycle).
pub fn check_ring(n: usize, vertices: &[Perm], faults: &FaultSet) -> Result<(), VerifyError> {
    if vertices.len() < 3 {
        return Err(VerifyError::TooShort {
            len: vertices.len(),
        });
    }
    check_common(n, vertices, faults)?;
    // Wrap-around step.
    let last = vertices.len() - 1;
    if !vertices[last].is_adjacent(&vertices[0]) {
        return Err(VerifyError::NotAdjacent { index: last });
    }
    if faults.is_edge_faulty(&vertices[last], &vertices[0]) {
        return Err(VerifyError::FaultyEdge { index: last });
    }
    Ok(())
}

/// Verifies that `vertices` is a simple, healthy **path** of `S_n` (no
/// wrap-around requirement; a single vertex is a valid path).
pub fn check_path(n: usize, vertices: &[Perm], faults: &FaultSet) -> Result<(), VerifyError> {
    if vertices.is_empty() {
        return Err(VerifyError::TooShort { len: 0 });
    }
    check_common(n, vertices, faults)
}

fn check_common(n: usize, vertices: &[Perm], faults: &FaultSet) -> Result<(), VerifyError> {
    let mut seen: HashSet<u32> = HashSet::with_capacity(vertices.len());
    for (i, v) in vertices.iter().enumerate() {
        if v.n() != n {
            return Err(VerifyError::WrongDimension { index: i });
        }
        if !seen.insert(v.rank()) {
            return Err(VerifyError::RepeatedVertex {
                index: i,
                vertex: *v,
            });
        }
        if faults.is_vertex_faulty(v) {
            return Err(VerifyError::FaultyVertex {
                index: i,
                vertex: *v,
            });
        }
    }
    for i in 0..vertices.len().saturating_sub(1) {
        if !vertices[i].is_adjacent(&vertices[i + 1]) {
            return Err(VerifyError::NotAdjacent { index: i });
        }
        if faults.is_edge_faulty(&vertices[i], &vertices[i + 1]) {
            return Err(VerifyError::FaultyEdge { index: i });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_graph::Edge;

    fn six_ring() -> Vec<Perm> {
        // S_3 is a 6-cycle; walk it.
        let mut v = Perm::identity(3);
        let mut out = vec![v];
        for d in [1, 2, 1, 2, 1] {
            v = v.star_move(d);
            out.push(v);
        }
        out
    }

    #[test]
    fn accepts_s3_six_cycle() {
        let ring = six_ring();
        assert_eq!(ring.len(), 6);
        check_ring(3, &ring, &FaultSet::empty(3)).unwrap();
    }

    #[test]
    fn rejects_broken_adjacency() {
        let mut ring = six_ring();
        ring.swap(1, 3);
        assert!(matches!(
            check_ring(3, &ring, &FaultSet::empty(3)),
            Err(VerifyError::NotAdjacent { .. })
        ));
    }

    #[test]
    fn rejects_repeats() {
        let mut ring = six_ring();
        ring[4] = ring[0];
        assert!(matches!(
            check_ring(3, &ring, &FaultSet::empty(3)),
            Err(VerifyError::RepeatedVertex { .. })
        ));
    }

    #[test]
    fn rejects_faulty_vertex_and_edge() {
        let ring = six_ring();
        let faults = FaultSet::from_vertices(3, [ring[2]]).unwrap();
        assert!(matches!(
            check_ring(3, &ring, &faults),
            Err(VerifyError::FaultyVertex { .. })
        ));
        let e = Edge::new(ring[5], ring[0]).unwrap();
        let efaults = FaultSet::from_edges(3, [e]).unwrap();
        assert!(matches!(
            check_ring(3, &ring, &efaults),
            Err(VerifyError::FaultyEdge { index: 5 })
        ));
    }

    #[test]
    fn rejects_short_and_wrong_dimension() {
        assert!(matches!(
            check_ring(3, &six_ring()[..2], &FaultSet::empty(3)),
            Err(VerifyError::TooShort { len: 2 })
        ));
        assert!(matches!(
            check_ring(4, &six_ring(), &FaultSet::empty(4)),
            Err(VerifyError::WrongDimension { index: 0 })
        ));
    }

    #[test]
    fn path_checks() {
        let ring = six_ring();
        check_path(3, &ring[..4], &FaultSet::empty(3)).unwrap();
        check_path(3, &ring[..1], &FaultSet::empty(3)).unwrap();
        assert!(check_path(3, &[], &FaultSet::empty(3)).is_err());
    }
}
