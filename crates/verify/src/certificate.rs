//! Ring certificates: a self-contained, re-checkable text artifact.
//!
//! An embedding is only as trustworthy as its verification, and
//! verification is only portable if the *object* is. A certificate bundles
//! everything needed to re-check a ring — dimension, fault set, the ring
//! as Lehmer ranks — plus an FNV-1a checksum for transport integrity, in a
//! line-oriented text format (`STARRING-CERT v1`):
//!
//! ```text
//! STARRING-CERT v1
//! n 6
//! fault 41523 6            # rank and (redundantly) n, one line per fault
//! efault 12 450            # faulty link, endpoint ranks
//! ring 714 0 5 17 ...      # length then the ranks
//! checksum 2f9a11bc0de455aa
//! ```
//!
//! [`verify_certificate`] re-derives everything from scratch — it does not
//! trust any field it can recompute.

use core::fmt;

use star_fault::FaultSet;
use star_perm::{factorial, Perm};

use crate::{check_ring, VerifyError};

/// Errors raised when parsing or checking a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// Not a `STARRING-CERT v1` document, or a malformed line.
    Malformed(String),
    /// The checksum line does not match the ring data.
    ChecksumMismatch,
    /// The embedded ring fails verification.
    Invalid(VerifyError),
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::Malformed(what) => write!(f, "malformed certificate: {what}"),
            CertificateError::ChecksumMismatch => write!(f, "certificate checksum mismatch"),
            CertificateError::Invalid(e) => write!(f, "certified ring is invalid: {e}"),
        }
    }
}

impl std::error::Error for CertificateError {}

/// Summary of a successfully verified certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateSummary {
    /// Host dimension.
    pub n: usize,
    /// Number of vertex faults the ring avoids.
    pub fault_count: usize,
    /// Ring length.
    pub ring_len: usize,
    /// Whether the length matches the paper's `n! - 2|F_v|` guarantee.
    pub at_guarantee: bool,
}

/// FNV-1a basis (the running state before any rank is folded in).
pub const CHECKSUM_BASIS: u64 = 0xcbf29ce484222325;

/// Folds one ring rank into a running STARRING-CERT checksum. Exposed so
/// streaming consumers (wire protocol v2) can verify a certificate
/// checksum chunk-by-chunk without ever holding the whole ring:
/// `ranks.fold(CHECKSUM_BASIS, fold_checksum)` equals the `checksum`
/// line [`certificate_for`] writes for the same ranks in the same order.
pub fn fold_checksum(mut hash: u64, rank: u32) -> u64 {
    for byte in rank.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// The STARRING-CERT checksum of a full rank sequence.
pub fn ring_checksum(ranks: impl Iterator<Item = u32>) -> u64 {
    ranks.fold(CHECKSUM_BASIS, fold_checksum)
}

fn fnv1a(data: impl Iterator<Item = u32>) -> u64 {
    ring_checksum(data)
}

/// Produces the certificate text for a verified ring. (The caller should
/// hold a ring it believes in; the *consumer* re-verifies regardless.)
///
/// # Examples
///
/// ```
/// use star_fault::FaultSet;
/// use star_perm::Perm;
/// use star_verify::certificate::{certificate_for, verify_certificate};
///
/// // S_3 is itself a 6-cycle.
/// let mut v = Perm::identity(3);
/// let mut ring = vec![v];
/// for d in [1, 2, 1, 2, 1] {
///     v = v.star_move(d);
///     ring.push(v);
/// }
/// let cert = certificate_for(3, &FaultSet::empty(3), &ring);
/// assert!(verify_certificate(&cert).unwrap().at_guarantee);
/// ```
pub fn certificate_for(n: usize, faults: &FaultSet, ring: &[Perm]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "STARRING-CERT v1");
    let _ = writeln!(out, "n {n}");
    for f in faults.vertices() {
        let _ = writeln!(out, "fault {} {n}", f.rank());
    }
    for e in faults.edges() {
        let _ = writeln!(out, "efault {} {}", e.lo().rank(), e.hi().rank());
    }
    let _ = write!(out, "ring {}", ring.len());
    for v in ring {
        let _ = write!(out, " {}", v.rank());
    }
    out.push('\n');
    let checksum = fnv1a(ring.iter().map(Perm::rank));
    let _ = writeln!(out, "checksum {checksum:016x}");
    out
}

/// Parses and fully re-verifies a certificate: checksum, permutation
/// validity, ring validity against the declared faults, and the
/// paper-guarantee comparison.
pub fn verify_certificate(text: &str) -> Result<CertificateSummary, CertificateError> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("STARRING-CERT v1") {
        return Err(CertificateError::Malformed("missing header".into()));
    }
    let mut n: Option<usize> = None;
    let mut fault_ranks: Vec<u32> = Vec::new();
    let mut edge_fault_ranks: Vec<(u32, u32)> = Vec::new();
    let mut ring_ranks: Vec<u32> = Vec::new();
    let mut checksum: Option<u64> = None;
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                n = Some(
                    parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| CertificateError::Malformed("bad n line".into()))?,
                );
            }
            Some("fault") => {
                let rank: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| CertificateError::Malformed("bad fault line".into()))?;
                fault_ranks.push(rank);
            }
            Some("efault") => {
                let a: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| CertificateError::Malformed("bad efault line".into()))?;
                let b: u32 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| CertificateError::Malformed("bad efault line".into()))?;
                edge_fault_ranks.push((a, b));
            }
            Some("ring") => {
                let declared: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| CertificateError::Malformed("bad ring length".into()))?;
                ring_ranks = parts
                    .map(|t| t.parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| CertificateError::Malformed("bad ring rank".into()))?;
                if ring_ranks.len() != declared {
                    return Err(CertificateError::Malformed(format!(
                        "ring declares {declared} vertices but lists {}",
                        ring_ranks.len()
                    )));
                }
            }
            Some("checksum") => {
                checksum = Some(
                    parts
                        .next()
                        .and_then(|t| u64::from_str_radix(t, 16).ok())
                        .ok_or_else(|| CertificateError::Malformed("bad checksum".into()))?,
                );
            }
            Some(other) => {
                return Err(CertificateError::Malformed(format!(
                    "unknown field {other}"
                )))
            }
            None => {}
        }
    }
    let n = n.ok_or_else(|| CertificateError::Malformed("missing n".into()))?;
    if !(1..=star_perm::MAX_N).contains(&n) {
        return Err(CertificateError::Malformed(format!("n = {n} out of range")));
    }
    let expected_checksum =
        checksum.ok_or_else(|| CertificateError::Malformed("missing checksum".into()))?;
    if fnv1a(ring_ranks.iter().copied()) != expected_checksum {
        return Err(CertificateError::ChecksumMismatch);
    }
    let decode = |rank: u32| {
        Perm::unrank(n, rank)
            .map_err(|_| CertificateError::Malformed(format!("rank {rank} out of range")))
    };
    let mut faults = FaultSet::from_vertices(
        n,
        fault_ranks
            .iter()
            .map(|&r| decode(r))
            .collect::<Result<Vec<_>, _>>()?,
    )
    .map_err(|e| CertificateError::Malformed(e.to_string()))?;
    for &(a, b) in &edge_fault_ranks {
        let edge = star_graph::Edge::new(decode(a)?, decode(b)?)
            .map_err(|e| CertificateError::Malformed(e.to_string()))?;
        faults
            .add_edge(edge)
            .map_err(|e| CertificateError::Malformed(e.to_string()))?;
    }
    let ring: Vec<Perm> = ring_ranks
        .iter()
        .map(|&r| decode(r))
        .collect::<Result<_, _>>()?;
    check_ring(n, &ring, &faults).map_err(CertificateError::Invalid)?;
    Ok(CertificateSummary {
        n,
        fault_count: faults.vertex_fault_count(),
        ring_len: ring.len(),
        at_guarantee: ring.len() as u64 == factorial(n) - 2 * faults.vertex_fault_count() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn six_ring() -> Vec<Perm> {
        let mut v = Perm::identity(3);
        let mut out = vec![v];
        for d in [1usize, 2, 1, 2, 1] {
            v = v.star_move(d);
            out.push(v);
        }
        out
    }

    #[test]
    fn roundtrip_verifies() {
        let ring = six_ring();
        let cert = certificate_for(3, &FaultSet::empty(3), &ring);
        let summary = verify_certificate(&cert).unwrap();
        assert_eq!(summary.n, 3);
        assert_eq!(summary.ring_len, 6);
        assert_eq!(summary.fault_count, 0);
        assert!(summary.at_guarantee);
    }

    #[test]
    fn tampering_is_detected() {
        let ring = six_ring();
        let cert = certificate_for(3, &FaultSet::empty(3), &ring);
        // Flip one ring rank without fixing the checksum.
        let tampered = cert.replace("ring 6 0", "ring 6 1");
        assert_eq!(
            verify_certificate(&tampered),
            Err(CertificateError::ChecksumMismatch)
        );
    }

    #[test]
    fn checksum_fixup_still_caught_by_reverification() {
        // An attacker who also fixes the checksum is caught by the actual
        // ring check (repeat vertex).
        let mut ranks: Vec<u32> = six_ring().iter().map(Perm::rank).collect();
        ranks[0] = ranks[1];
        let ring: Vec<Perm> = ranks.iter().map(|&r| Perm::unrank(3, r).unwrap()).collect();
        let cert = certificate_for(3, &FaultSet::empty(3), &ring);
        assert!(matches!(
            verify_certificate(&cert),
            Err(CertificateError::Invalid(_))
        ));
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(matches!(
            verify_certificate("not a cert"),
            Err(CertificateError::Malformed(_))
        ));
        assert!(matches!(
            verify_certificate("STARRING-CERT v1\nring 2 0 1\nchecksum 0\n"),
            Err(CertificateError::Malformed(_)) // missing n
        ));
        assert!(matches!(
            verify_certificate("STARRING-CERT v1\nn 99\nring 0\nchecksum cbf29ce484222325\n"),
            Err(CertificateError::Malformed(_)) // n out of range
        ));
    }

    #[test]
    fn edge_faults_are_certified_and_enforced() {
        // A ring that crosses a declared-faulty link must be rejected.
        let ring = six_ring();
        let e = star_graph::Edge::new(ring[0], ring[1]).unwrap();
        let faults = FaultSet::from_edges(3, [e]).unwrap();
        let cert = certificate_for(3, &faults, &ring);
        assert!(cert.contains("efault"));
        assert!(matches!(
            verify_certificate(&cert),
            Err(CertificateError::Invalid(_))
        ));
        // A certified faulty link *off* the ring is fine: use a 22-ring of
        // S_4 and fault one of the edges it skips.
        let g = star_graph::smallgraph::SmallGraph::from_star(4);
        let dead = Perm::identity(4);
        let mut blocked = vec![false; 24];
        blocked[dead.rank() as usize] = true;
        let (cycle, _) = g.longest_cycle(&blocked, u64::MAX);
        let ring4: Vec<Perm> = cycle
            .into_iter()
            .map(|id| Perm::unrank(4, id as u32).unwrap())
            .collect();
        // Any edge incident to the skipped vertex is off the ring.
        let off_ring = star_graph::Edge::new(dead, dead.star_move(1)).unwrap();
        let mut faults4 = FaultSet::from_vertices(4, [dead]).unwrap();
        faults4.add_edge(off_ring).unwrap();
        let cert = certificate_for(4, &faults4, &ring4);
        let summary = verify_certificate(&cert).unwrap();
        assert_eq!(summary.ring_len, 22);
    }

    #[test]
    fn hamiltonian_ring_certificate_via_search() {
        // Certify a Hamiltonian ring of S_4 found by exhaustive search
        // (faulty embedded rings are certified in the root integration
        // tests, where the embedder is available).
        let g = star_graph::smallgraph::SmallGraph::from_star(4);
        let (cycle, _) = g.longest_cycle(&[false; 24], u64::MAX);
        let ring: Vec<Perm> = cycle
            .into_iter()
            .map(|id| Perm::unrank(4, id as u32).unwrap())
            .collect();
        let cert = certificate_for(4, &FaultSet::empty(4), &ring);
        let summary = verify_certificate(&cert).unwrap();
        assert_eq!(summary.ring_len, 24);
        assert!(summary.at_guarantee);
    }
}
