//! Property-based tests for the star-graph substrate: metric axioms,
//! routing optimality, pattern isomorphism, partition structure.

use proptest::prelude::*;
use star_graph::{diameter, distance, partition, routing, Pattern};
use star_perm::{factorial, Perm};

fn arb_perm_pair() -> impl Strategy<Value = (Perm, Perm)> {
    (3usize..=8).prop_flat_map(|n| {
        let f = factorial(n) as u32;
        (0..f, 0..f).prop_map(move |(a, b)| {
            (
                Perm::unrank(n, a).expect("rank in range"),
                Perm::unrank(n, b).expect("rank in range"),
            )
        })
    })
}

fn arb_perm_triple() -> impl Strategy<Value = (Perm, Perm, Perm)> {
    (3usize..=7).prop_flat_map(|n| {
        let f = factorial(n) as u32;
        (0..f, 0..f, 0..f).prop_map(move |(a, b, c)| {
            (
                Perm::unrank(n, a).unwrap(),
                Perm::unrank(n, b).unwrap(),
                Perm::unrank(n, c).unwrap(),
            )
        })
    })
}

/// Strategy: a random pattern in S_n (n in 4..=8) with 2..=n free
/// positions, plus one of its member vertices.
fn arb_pattern_with_member() -> impl Strategy<Value = (Pattern, Perm)> {
    (4usize..=8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0u8..8, n - 1),
            0u32..5040,
        )
            .prop_map(|(n, pin_choices, member_seed)| {
                // Pin a pseudo-random subset of positions 1..n to distinct
                // symbols, leaving at least 2 free.
                let mut pat = Pattern::full(n);
                for (i, &c) in pin_choices.iter().enumerate() {
                    let pos = i + 1;
                    if pat.r() <= 2 {
                        break;
                    }
                    if c % 3 == 0 {
                        let free: Vec<u8> = pat.free_symbols().iter().collect();
                        let sym = free[c as usize % free.len()];
                        pat = pat.sub(pos, sym).expect("free position and symbol");
                    }
                }
                let r = pat.r();
                let local_rank = member_seed % factorial(r) as u32;
                let member = pat.from_local(&Perm::unrank(r, local_rank).unwrap());
                (pat, member)
            })
    })
}

proptest! {
    #[test]
    fn distance_metric_axioms((a, b) in arb_perm_pair()) {
        prop_assert_eq!(distance(&a, &b), distance(&b, &a));
        prop_assert_eq!(distance(&a, &b) == 0, a == b);
        prop_assert!(distance(&a, &b) <= diameter(a.n()));
        if a.is_adjacent(&b) {
            prop_assert_eq!(distance(&a, &b), 1);
        }
    }

    #[test]
    fn triangle_inequality((a, b, c) in arb_perm_triple()) {
        prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
    }

    #[test]
    fn routing_is_tight_and_valid((a, b) in arb_perm_pair()) {
        let path = routing::shortest_path(&a, &b);
        prop_assert_eq!(path.len() - 1, distance(&a, &b));
        prop_assert_eq!(path[0], a);
        prop_assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            prop_assert!(w[0].is_adjacent(&w[1]));
        }
    }

    #[test]
    fn pattern_local_coordinates_are_an_isomorphism((pat, member) in arb_pattern_with_member()) {
        prop_assert!(pat.contains(&member));
        // Roundtrip.
        prop_assert_eq!(pat.from_local(&pat.to_local(&member)), member);
        // Local star moves lift to pattern-internal edges and vice versa.
        let local = pat.to_local(&member);
        for d in 1..local.n() {
            let lifted = pat.from_local(&local.star_move(d));
            prop_assert!(member.is_adjacent(&lifted));
            prop_assert!(pat.contains(&lifted));
        }
        // Conversely, any neighbor of `member` inside the pattern maps to a
        // local neighbor.
        for nb in member.neighbors() {
            if pat.contains(&nb) {
                prop_assert!(pat.to_local(&member).is_adjacent(&pat.to_local(&nb)));
            }
        }
    }

    #[test]
    fn partitions_are_disjoint_covers((pat, member) in arb_pattern_with_member()) {
        prop_assume!(pat.r() >= 2);
        let pos = pat.free_positions().find(|&p| p != 0).unwrap();
        let parts = partition::i_partition(&pat, pos).unwrap();
        prop_assert_eq!(parts.len(), pat.r());
        // The member lands in exactly one part.
        prop_assert_eq!(parts.iter().filter(|q| q.contains(&member)).count(), 1);
        // Counts add up.
        let total: u64 = parts.iter().map(Pattern::vertex_count).sum();
        prop_assert_eq!(total, pat.vertex_count());
    }

    #[test]
    fn locate_matches_containment((pat, member) in arb_pattern_with_member()) {
        let pins: Vec<usize> = pat.fixed_positions().collect();
        let located = partition::locate(&member, &pins).unwrap();
        prop_assert_eq!(located, pat);
    }
}
