//! Embedded sub-stars of `S_n`: the paper's `<s_1 s_2 ... s_n>_r` notation.
//!
//! An embedded `S_r` inside `S_n` is described by a *pattern*: position 0 is
//! always a don't-care, exactly `r` positions are don't-cares in total, and
//! every other position is pinned to a fixed symbol. The pattern's vertices
//! are the `r!` permutations that agree with every pinned position; the
//! subgraph they induce is isomorphic to `S_r` ([`Pattern::to_local`] is the
//! isomorphism, which the tests verify).

use core::fmt;

use star_perm::{factorial, iter::PermIter, Perm, MAX_N};

use crate::GraphError;

/// A set of symbols drawn from `1..=MAX_N`, as a bitmask (bit `s-1` set iff
/// symbol `s` is present).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SymbolSet(u16);

impl SymbolSet {
    /// The empty set.
    #[inline]
    pub fn empty() -> Self {
        SymbolSet(0)
    }

    /// The full set `{1..=n}`.
    #[inline]
    pub fn full(n: usize) -> Self {
        SymbolSet(((1u32 << n) - 1) as u16)
    }

    /// Inserts a symbol.
    #[inline]
    pub fn insert(&mut self, s: u8) {
        debug_assert!((1..=MAX_N as u8).contains(&s));
        self.0 |= 1 << (s - 1);
    }

    /// Removes a symbol.
    #[inline]
    pub fn remove(&mut self, s: u8) {
        self.0 &= !(1 << (s - 1));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, s: u8) -> bool {
        s >= 1 && (self.0 >> (s - 1)) & 1 == 1
    }

    /// Number of symbols in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(&self, other: &SymbolSet) -> SymbolSet {
        SymbolSet(self.0 & other.0)
    }

    /// Iterates the symbols in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (1..=MAX_N as u8).filter(move |&s| self.contains(s))
    }
}

impl FromIterator<u8> for SymbolSet {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        let mut set = SymbolSet::empty();
        for s in iter {
            set.insert(s);
        }
        set
    }
}

/// An embedded `S_r` in `S_n` (`<s_1 s_2 ... s_n>_r` in the paper).
///
/// Internally `sym[i] == 0` encodes a don't-care; `sym[0]` is always 0.
///
/// # Examples
///
/// ```
/// use star_graph::Pattern;
///
/// // <**3*>_3: position 2 pinned to symbol 3 inside S_4.
/// let p = Pattern::from_spec(&[0, 0, 3, 0]).unwrap();
/// assert_eq!(p.r(), 3);
/// assert_eq!(p.vertex_count(), 6);
/// assert!(p.vertices().all(|v| v.get(2) == 3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    n: u8,
    sym: [u8; MAX_N],
}

impl Pattern {
    /// The trivial pattern: all positions free, i.e. `S_n` itself.
    pub fn full(n: usize) -> Self {
        assert!((1..=MAX_N).contains(&n), "Pattern size {n} out of range");
        Pattern {
            n: n as u8,
            sym: [0; MAX_N],
        }
    }

    /// Builds a pattern from a spec slice of length `n`, with 0 meaning
    /// don't-care. Validates: position 0 free, pinned symbols distinct and
    /// in `1..=n`.
    pub fn from_spec(spec: &[u8]) -> Result<Self, GraphError> {
        let n = spec.len();
        if !(1..=MAX_N).contains(&n) {
            return Err(GraphError::DimensionOutOfRange { n });
        }
        if spec[0] != 0 {
            return Err(GraphError::InvalidPattern(
                "position 0 must be a don't-care".into(),
            ));
        }
        let mut seen = [false; MAX_N + 1];
        let mut sym = [0u8; MAX_N];
        for (i, &s) in spec.iter().enumerate() {
            if s == 0 {
                continue;
            }
            if s as usize > n {
                return Err(GraphError::InvalidPattern(format!(
                    "symbol {s} out of range for n = {n}"
                )));
            }
            if seen[s as usize] {
                return Err(GraphError::InvalidPattern(format!("duplicate symbol {s}")));
            }
            seen[s as usize] = true;
            sym[i] = s;
        }
        Ok(Pattern { n: n as u8, sym })
    }

    /// The ambient dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// The order `r` of the embedded sub-star: the number of don't-cares.
    #[inline]
    pub fn r(&self) -> usize {
        self.sym[..self.n as usize]
            .iter()
            .filter(|&&s| s == 0)
            .count()
    }

    /// `true` iff position `pos` is a don't-care.
    #[inline]
    pub fn is_free_position(&self, pos: usize) -> bool {
        debug_assert!(pos < self.n as usize);
        self.sym[pos] == 0
    }

    /// The pinned symbol at `pos`, or `None` for a don't-care.
    #[inline]
    pub fn fixed_symbol(&self, pos: usize) -> Option<u8> {
        debug_assert!(pos < self.n as usize);
        match self.sym[pos] {
            0 => None,
            s => Some(s),
        }
    }

    /// Don't-care positions in increasing order (position 0 is always
    /// first).
    pub fn free_positions(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n as usize).filter(move |&i| self.sym[i] == 0)
    }

    /// Pinned positions in increasing order.
    pub fn fixed_positions(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n as usize).filter(move |&i| self.sym[i] != 0)
    }

    /// The symbols not pinned anywhere — the symbols that circulate among
    /// the don't-care positions.
    pub fn free_symbols(&self) -> SymbolSet {
        let mut set = SymbolSet::full(self.n());
        for i in 0..self.n as usize {
            if self.sym[i] != 0 {
                set.remove(self.sym[i]);
            }
        }
        set
    }

    /// Number of vertices in the embedded sub-star: `r!`.
    #[inline]
    pub fn vertex_count(&self) -> u64 {
        factorial(self.r())
    }

    /// Membership test: does `v` match every pinned position?
    pub fn contains(&self, v: &Perm) -> bool {
        if v.n() != self.n() {
            return false;
        }
        (0..self.n as usize).all(|i| self.sym[i] == 0 || self.sym[i] == v.get(i))
    }

    /// Pins don't-care position `pos` to `symbol`, producing the sub-pattern
    /// (an embedded `S_{r-1}`). Fails if `pos` is 0, already pinned, or
    /// `symbol` is not free.
    pub fn sub(&self, pos: usize, symbol: u8) -> Result<Pattern, GraphError> {
        if pos == 0 || pos >= self.n as usize || self.sym[pos] != 0 {
            return Err(GraphError::InvalidPartitionPosition { pos });
        }
        if !self.free_symbols().contains(symbol) {
            return Err(GraphError::InvalidPattern(format!(
                "symbol {symbol} is not free in {self}"
            )));
        }
        let mut out = *self;
        out.sym[pos] = symbol;
        Ok(out)
    }

    /// The pattern's vertices, enumerated by placing each arrangement of the
    /// free symbols into the don't-care positions. The enumeration order is
    /// the local rank order (see [`Pattern::to_local`]).
    pub fn vertices(&self) -> impl Iterator<Item = Perm> + '_ {
        let r = self.r();
        PermIter::new(r).map(move |local| self.from_local(&local))
    }

    /// The lexicographically-first vertex of the pattern.
    pub fn representative(&self) -> Perm {
        self.from_local(&Perm::identity(self.r()))
    }

    /// Projects a member vertex to its *local coordinates*: a permutation of
    /// `1..=r` where local position `i` is the i-th don't-care position (in
    /// increasing order) and local symbol `j` is the j-th free symbol (in
    /// increasing order).
    ///
    /// This map is an isomorphism from the induced subgraph onto `S_r`
    /// (swapping global position 0 with the i-th free position is exactly a
    /// local star move along dimension `i`).
    ///
    /// # Panics
    /// Panics if `v` is not a member of the pattern.
    pub fn to_local(&self, v: &Perm) -> Perm {
        assert!(self.contains(v), "vertex {v} not in pattern {self}");
        let free_syms: Vec<u8> = self.free_symbols().iter().collect();
        let mut buf = [0u8; MAX_N];
        let mut k = 0usize;
        for pos in 0..self.n as usize {
            if self.sym[pos] == 0 {
                let s = v.get(pos);
                let local = free_syms
                    .iter()
                    .position(|&fs| fs == s)
                    .expect("member symbol is free") as u8
                    + 1;
                buf[k] = local;
                k += 1;
            }
        }
        Perm::from_slice(&buf[..k]).expect("local coordinates form a permutation")
    }

    /// Inverse of [`Pattern::to_local`]: lifts a permutation of `1..=r` to
    /// the member vertex it denotes.
    pub fn from_local(&self, local: &Perm) -> Perm {
        let r = self.r();
        assert_eq!(local.n(), r, "local perm size must equal pattern order");
        let free_syms: Vec<u8> = self.free_symbols().iter().collect();
        let mut buf = [0u8; MAX_N];
        let mut k = 0usize;
        for (pos, slot) in buf.iter_mut().enumerate().take(self.n as usize) {
            *slot = if self.sym[pos] == 0 {
                let s = free_syms[(local.get(k) - 1) as usize];
                k += 1;
                s
            } else {
                self.sym[pos]
            };
        }
        Perm::from_slice(&buf[..self.n as usize]).expect("lifted vertex is a permutation")
    }

    /// `dif` (the paper's notation): if the two patterns are *adjacent*
    /// (same don't-care positions, pinned symbols equal everywhere except
    /// exactly one position), returns that position; otherwise `None`.
    pub fn dif(&self, other: &Pattern) -> Option<usize> {
        if self.n != other.n {
            return None;
        }
        let mut diff_pos = None;
        for i in 0..self.n as usize {
            let (a, b) = (self.sym[i], other.sym[i]);
            if a == b {
                continue;
            }
            if a == 0 || b == 0 {
                return None; // don't-care structure differs
            }
            if diff_pos.is_some() {
                return None; // differs in more than one pinned position
            }
            diff_pos = Some(i);
        }
        diff_pos
    }

    /// `true` iff the patterns are adjacent super-vertices.
    #[inline]
    pub fn is_adjacent(&self, other: &Pattern) -> bool {
        self.dif(other).is_some()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        let wide = self.n > 9;
        for i in 0..self.n as usize {
            if wide && i > 0 {
                write!(f, ".")?;
            }
            match self.sym[i] {
                0 => write!(f, "*")?,
                s => write!(f, "{s}")?,
            }
        }
        write!(f, ">_{}", self.r())
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_set_basics() {
        let mut s = SymbolSet::empty();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(7);
        assert!(s.contains(3) && s.contains(7) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
        s.remove(3);
        assert_eq!(s.len(), 1);
        assert_eq!(SymbolSet::full(5).len(), 5);
    }

    #[test]
    fn paper_example_pattern() {
        // The paper's example: <**3 4>_... in S_4 — pattern with positions
        // 2,3 pinned to 3,4 — has 2! = 2 vertices; <* * 3 *>_3 has 6.
        let p = Pattern::from_spec(&[0, 0, 3, 0]).unwrap();
        assert_eq!(p.r(), 3);
        assert_eq!(p.vertex_count(), 6);
        let members: Vec<Perm> = p.vertices().collect();
        assert_eq!(members.len(), 6);
        for m in &members {
            assert_eq!(m.get(2), 3);
            assert!(p.contains(m));
        }
    }

    #[test]
    fn from_spec_validation() {
        assert!(Pattern::from_spec(&[1, 0, 0, 0]).is_err()); // pos 0 pinned
        assert!(Pattern::from_spec(&[0, 2, 2, 0]).is_err()); // duplicate
        assert!(Pattern::from_spec(&[0, 5, 0, 0]).is_err()); // out of range
        assert!(Pattern::from_spec(&[0, 2, 3, 0]).is_ok());
    }

    #[test]
    fn sub_pins_a_position() {
        let p = Pattern::full(5);
        let q = p.sub(2, 4).unwrap();
        assert_eq!(q.r(), 4);
        assert_eq!(q.fixed_symbol(2), Some(4));
        assert!(q.sub(2, 1).is_err()); // already pinned
        assert!(q.sub(3, 4).is_err()); // 4 no longer free
        assert!(p.sub(0, 1).is_err()); // position 0 never pinned
    }

    #[test]
    fn local_roundtrip_and_isomorphism() {
        // <*4*2*>_3 in S_5: free positions {0,2,4}, free symbols {1,3,5}.
        let p = Pattern::from_spec(&[0, 4, 0, 2, 0]).unwrap();
        assert_eq!(p.r(), 3);
        for v in p.vertices() {
            let l = p.to_local(&v);
            assert_eq!(p.from_local(&l), v, "roundtrip through local coords");
        }
        // Isomorphism: global adjacency within the pattern == local star
        // adjacency.
        let members: Vec<Perm> = p.vertices().collect();
        for a in &members {
            for b in &members {
                let global_adj = a.is_adjacent(b);
                let local_adj = p.to_local(a).is_adjacent(&p.to_local(b));
                assert_eq!(global_adj, local_adj, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn vertices_enumerate_in_local_rank_order() {
        let p = Pattern::from_spec(&[0, 0, 5, 0, 0]).unwrap();
        let vs: Vec<Perm> = p.vertices().collect();
        assert_eq!(vs.len(), 24);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(p.to_local(v).rank() as usize, i);
        }
    }

    #[test]
    fn dif_detects_adjacency() {
        // <**23>_2 and <**13>_2 differ exactly at position 2.
        let a = Pattern::from_spec(&[0, 0, 2, 3]).unwrap();
        let b = Pattern::from_spec(&[0, 0, 1, 3]).unwrap();
        assert_eq!(a.dif(&b), Some(2));
        assert!(a.is_adjacent(&b));
        // Same pattern: not adjacent.
        assert_eq!(a.dif(&a), None);
        // Different don't-care structure: not adjacent.
        let c = Pattern::from_spec(&[0, 2, 0, 3]).unwrap();
        assert_eq!(a.dif(&c), None);
        // Two pinned differences: not adjacent.
        let d = Pattern::from_spec(&[0, 0, 1, 4]).unwrap();
        assert_eq!(a.dif(&d), None);
    }

    #[test]
    fn free_symbols_complement_fixed() {
        let p = Pattern::from_spec(&[0, 6, 0, 2, 0, 0]).unwrap();
        let free: Vec<u8> = p.free_symbols().iter().collect();
        assert_eq!(free, vec![1, 3, 4, 5]);
    }

    #[test]
    fn full_pattern_is_whole_graph() {
        let p = Pattern::full(4);
        assert_eq!(p.r(), 4);
        assert_eq!(p.vertex_count(), 24);
        assert_eq!(p.vertices().count(), 24);
    }

    #[test]
    fn display_format() {
        let p = Pattern::from_spec(&[0, 0, 1, 5, 0]).unwrap();
        assert_eq!(p.to_string(), "<**15*>_3");
    }
}
