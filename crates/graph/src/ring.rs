//! Super-rings: the paper's `R^r` (Definition 4).

use star_perm::factorial;

use crate::{GraphError, Pattern};

/// A ring of `r`-vertices: every two cyclically-consecutive patterns are
/// adjacent super-vertices. When the ring covers a full
/// `(i_1,...,i_{n-r})`-partition of `S_n` it is the paper's `R^r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperRing {
    patterns: Vec<Pattern>,
}

impl SuperRing {
    /// Builds a super-ring, validating cyclic adjacency, uniform order `r`,
    /// and distinctness.
    pub fn new(patterns: Vec<Pattern>) -> Result<Self, GraphError> {
        if patterns.len() < 3 {
            return Err(GraphError::InvalidSuperRing(format!(
                "a super-ring needs at least 3 super-vertices, got {}",
                patterns.len()
            )));
        }
        let r = patterns[0].r();
        let n = patterns[0].n();
        for p in &patterns {
            if p.r() != r || p.n() != n {
                return Err(GraphError::InvalidSuperRing(
                    "mixed pattern orders in super-ring".into(),
                ));
            }
        }
        let len = patterns.len();
        for i in 0..len {
            let a = &patterns[i];
            let b = &patterns[(i + 1) % len];
            if a.dif(b).is_none() {
                return Err(GraphError::InvalidSuperRing(format!(
                    "consecutive super-vertices {a} and {b} (index {i}) are not adjacent"
                )));
            }
        }
        let mut sorted = patterns.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != len {
            return Err(GraphError::InvalidSuperRing(
                "duplicate super-vertices in ring".into(),
            ));
        }
        Ok(SuperRing { patterns })
    }

    /// The common sub-star order `r`.
    #[inline]
    pub fn r(&self) -> usize {
        self.patterns[0].r()
    }

    /// The ambient dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.patterns[0].n()
    }

    /// Number of super-vertices on the ring.
    #[inline]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Super-rings are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The super-vertex at ring index `i` (not wrapped).
    #[inline]
    pub fn get(&self, i: usize) -> &Pattern {
        &self.patterns[i]
    }

    /// The super-vertex at cyclic index `i mod len`.
    #[inline]
    pub fn get_wrapped(&self, i: usize) -> &Pattern {
        &self.patterns[i % self.patterns.len()]
    }

    /// Iterates the super-vertices in ring order.
    pub fn iter(&self) -> impl Iterator<Item = &Pattern> {
        self.patterns.iter()
    }

    /// The underlying vector.
    pub fn into_inner(self) -> Vec<Pattern> {
        self.patterns
    }

    /// `dif` between ring positions `i` and `i+1` (cyclically).
    pub fn dif_at(&self, i: usize) -> usize {
        let len = self.patterns.len();
        self.patterns[i % len]
            .dif(&self.patterns[(i + 1) % len])
            .expect("SuperRing invariant: consecutive patterns adjacent")
    }

    /// `true` iff the ring covers a full partition of `S_n` into
    /// `r`-vertices (i.e. has `n!/r!` super-vertices; distinctness plus the
    /// shared don't-care structure then force a partition).
    pub fn covers_partition(&self) -> bool {
        self.patterns.len() as u64 == factorial(self.n()) / factorial(self.r())
    }

    /// Property **(P2)** of the paper: for every three cyclically
    /// consecutive super-vertices `U, V, W`,
    /// `u_{dif(U,V)} != w_{dif(V,W)}`.
    ///
    /// By Lemma 1 this guarantees that after one more partition every
    /// sub-vertex of `V` is connected to `U` or `W`.
    pub fn satisfies_p2(&self) -> bool {
        let len = self.patterns.len();
        (0..len).all(|i| {
            let u = &self.patterns[i];
            let v = &self.patterns[(i + 1) % len];
            let w = &self.patterns[(i + 2) % len];
            let p = u.dif(v).expect("ring adjacency");
            let q = v.dif(w).expect("ring adjacency");
            u.fixed_symbol(p).unwrap() != w.fixed_symbol(q).unwrap()
        })
    }

    /// Total number of `S_n` vertices covered by the ring's super-vertices.
    pub fn covered_vertex_count(&self) -> u64 {
        self.patterns.len() as u64 * factorial(self.r())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(spec: &[u8]) -> Pattern {
        Pattern::from_spec(spec).unwrap()
    }

    #[test]
    fn k4_cycle_is_a_super_ring_with_p2() {
        // Partition S_4 at position 3: four S_3's pairwise adjacent (K_4).
        // Any cyclic order is a ring; P2 holds because all difs equal 3 and
        // symbols differ.
        let ps = vec![
            pat(&[0, 0, 0, 1]),
            pat(&[0, 0, 0, 2]),
            pat(&[0, 0, 0, 3]),
            pat(&[0, 0, 0, 4]),
        ];
        let ring = SuperRing::new(ps).unwrap();
        assert_eq!(ring.r(), 3);
        assert_eq!(ring.len(), 4);
        assert!(ring.covers_partition());
        assert!(ring.satisfies_p2());
        assert_eq!(ring.covered_vertex_count(), 24);
        assert_eq!(ring.dif_at(0), 3);
        assert_eq!(ring.dif_at(3), 3);
    }

    #[test]
    fn rejects_non_adjacent_sequence() {
        // <**34>_2's neighbor must differ at exactly one pinned position.
        let ps = vec![pat(&[0, 0, 3, 4]), pat(&[0, 0, 4, 3]), pat(&[0, 0, 1, 4])];
        assert!(SuperRing::new(ps).is_err());
    }

    #[test]
    fn rejects_duplicates_and_short_rings() {
        let a = pat(&[0, 0, 0, 1]);
        let b = pat(&[0, 0, 0, 2]);
        assert!(SuperRing::new(vec![a, b]).is_err());
        assert!(SuperRing::new(vec![a, b, a, b]).is_err());
    }

    #[test]
    fn p2_fails_on_palindromic_triple() {
        // U and W identical symbols around V would violate P2; build a
        // 4-ring where some triple has u_p == w_q.
        // Patterns pinned at position 1 in S_4: <*1**>, <*2**>, ... all
        // pairwise adjacent with dif = 1.
        let ring = SuperRing::new(vec![
            pat(&[0, 1, 0, 0]),
            pat(&[0, 2, 0, 0]),
            pat(&[0, 3, 0, 0]),
            pat(&[0, 4, 0, 0]),
        ])
        .unwrap();
        // Here every triple has distinct symbols at the shared dif, so P2
        // holds...
        assert!(ring.satisfies_p2());
        // ...but a mixed-dif ring can violate it. Take S_4 patterns of
        // order 2: A=<**34>, B=<**14>, C=<**13>, D=<**43>? C and D are not
        // adjacent; use the 6-ring over pairs instead.
        let six = SuperRing::new(vec![
            pat(&[0, 0, 3, 4]),
            pat(&[0, 0, 1, 4]),
            pat(&[0, 0, 1, 3]),
            pat(&[0, 0, 4, 3]),
            pat(&[0, 0, 4, 1]),
            pat(&[0, 0, 3, 1]),
        ])
        .unwrap();
        // Triple (<**34>, <**14>, <**13>): p = 2 (u_p = 3), q = 3 (w_q = 3):
        // u_p == w_q, so P2 must fail.
        assert!(!six.satisfies_p2());
    }
}
