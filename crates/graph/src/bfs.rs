//! Brute-force breadth-first search over `S_n`.
//!
//! Used to cross-validate the closed-form distance/diameter formulas for
//! small `n` and by the exhaustive optimality checks in `star-verify`.
//! Distances are indexed by Lehmer rank, so a full BFS over `S_n` costs
//! `O(n! · n)` time and `n!` bytes.

use std::collections::VecDeque;

use star_perm::{factorial, Perm};

/// Distance (in edges) from `src` to every vertex of `S_n`, indexed by
/// Lehmer rank. `u32::MAX` marks unreachable vertices (never happens on the
/// full graph, which is connected, but can when `blocked` is used).
pub fn distances_from(n: usize, src: &Perm) -> Vec<u32> {
    distances_from_avoiding(n, src, |_| false)
}

/// BFS distances avoiding vertices for which `blocked` returns `true`
/// (faulty processors). The source must not be blocked.
pub fn distances_from_avoiding<F>(n: usize, src: &Perm, blocked: F) -> Vec<u32>
where
    F: Fn(&Perm) -> bool,
{
    assert_eq!(src.n(), n);
    assert!(!blocked(src), "BFS source is blocked");
    let total = factorial(n) as usize;
    let mut dist = vec![u32::MAX; total];
    let mut queue = VecDeque::new();
    dist[src.rank() as usize] = 0;
    queue.push_back(*src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.rank() as usize];
        for v in u.neighbors() {
            let r = v.rank() as usize;
            if dist[r] == u32::MAX && !blocked(&v) {
                dist[r] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The eccentricity of `src`: the largest finite BFS distance.
pub fn eccentricity(n: usize, src: &Perm) -> u32 {
    distances_from(n, src)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

/// Number of vertices reachable from `src` avoiding `blocked` vertices
/// (including `src` itself). Used for connectivity/resilience checks.
pub fn reachable_count_avoiding<F>(n: usize, src: &Perm, blocked: F) -> usize
where
    F: Fn(&Perm) -> bool,
{
    distances_from_avoiding(n, src, blocked)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::diameter;

    #[test]
    fn s3_is_a_six_cycle() {
        let dist = distances_from(3, &Perm::identity(3));
        let mut sorted = dist.clone();
        sorted.sort_unstable();
        // On a 6-cycle: one vertex at distance 0, two at 1, two at 2, one at 3.
        assert_eq!(sorted, vec![0, 1, 1, 2, 2, 3]);
    }

    #[test]
    fn eccentricity_matches_diameter_formula() {
        // S_n is vertex-transitive, so any vertex's eccentricity is the
        // diameter ⌊3(n-1)/2⌋.
        for n in 2..=6 {
            assert_eq!(
                eccentricity(n, &Perm::identity(n)) as usize,
                diameter(n),
                "diameter of S_{n}"
            );
        }
    }

    #[test]
    fn blocking_disconnects_counted() {
        // Blocking all neighbors of the source isolates it.
        let src = Perm::identity(4);
        let nbrs: Vec<Perm> = src.neighbors().collect();
        let count = reachable_count_avoiding(4, &src, |v| nbrs.contains(v));
        assert_eq!(count, 1);
    }

    #[test]
    fn full_graph_is_connected() {
        assert_eq!(
            reachable_count_avoiding(5, &Perm::identity(5), |_| false),
            120
        );
    }
}
