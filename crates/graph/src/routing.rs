//! Constructive shortest-path routing in `S_n`.
//!
//! The classic optimal strategy for sorting a permutation to the identity
//! with star moves (Akers–Krishnamurthy):
//!
//! 1. if the symbol at position 0 is not `1`, send it home (swap position 0
//!    with that symbol's home position);
//! 2. otherwise pick any displaced symbol and bring it to position 0.
//!
//! Step 1 strictly shrinks the cycle containing position 0; step 2 opens a
//! new cycle at the cost of one move. The move count matches the
//! closed-form distance, which the tests verify exhaustively for small `n`.

use star_perm::Perm;

/// The sequence of star-move dimensions that sorts `w` to the identity
/// optimally. Empty iff `w` is the identity.
pub fn sorting_moves(w: &Perm) -> Vec<usize> {
    let n = w.n();
    let mut cur = *w;
    let mut moves = Vec::new();
    loop {
        let first = cur.first();
        if first != 1 {
            // Send the pivot symbol home.
            let home = (first - 1) as usize;
            moves.push(home);
            cur.star_move_in_place(home);
        } else {
            // Pivot holds 1; find any displaced symbol to start a new cycle.
            let mut displaced = None;
            for i in 1..n {
                if cur.get(i) != (i + 1) as u8 {
                    displaced = Some(i);
                    break;
                }
            }
            match displaced {
                Some(i) => {
                    moves.push(i);
                    cur.star_move_in_place(i);
                }
                None => break, // identity reached
            }
        }
    }
    moves
}

/// A shortest path from `u` to `v` in `S_n`, as the full vertex sequence
/// `[u, ..., v]` (length `distance(u, v) + 1`).
///
/// # Panics
/// Panics if the permutations have different sizes.
pub fn shortest_path(u: &Perm, v: &Perm) -> Vec<Perm> {
    assert_eq!(u.n(), v.n(), "routing between different-size permutations");
    // Sorting w = u^{-1}∘v to the identity by right-multiplications yields,
    // applied from v, a walk that ends at u; reverse it.
    let w = u.inverse().compose(v);
    let moves = sorting_moves(&w);
    let mut path = Vec::with_capacity(moves.len() + 1);
    let mut cur = *v;
    path.push(cur);
    for d in moves {
        cur.star_move_in_place(d);
        path.push(cur);
    }
    debug_assert_eq!(*path.last().unwrap(), *u);
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance;

    fn is_valid_path(path: &[Perm]) -> bool {
        path.windows(2).all(|w| w[0].is_adjacent(&w[1]))
    }

    #[test]
    fn path_endpoints_and_validity() {
        let u = Perm::from_digits(5, 45312);
        let v = Perm::from_digits(5, 21534);
        let p = shortest_path(&u, &v);
        assert_eq!(p.first(), Some(&u));
        assert_eq!(p.last(), Some(&v));
        assert!(is_valid_path(&p));
    }

    #[test]
    fn path_length_is_distance_exhaustive_s4() {
        let anchor = Perm::from_digits(4, 3142);
        for rank in 0..24u32 {
            let v = Perm::unrank(4, rank).unwrap();
            let p = shortest_path(&anchor, &v);
            assert!(is_valid_path(&p), "{anchor} -> {v}");
            assert_eq!(p.len() - 1, distance(&anchor, &v), "{anchor} -> {v}");
        }
    }

    #[test]
    fn path_length_is_distance_sampled_s7() {
        let u = Perm::from_digits(7, 7361524);
        for rank in (0..5040u32).step_by(311) {
            let v = Perm::unrank(7, rank).unwrap();
            let p = shortest_path(&u, &v);
            assert!(is_valid_path(&p));
            assert_eq!(p.len() - 1, distance(&u, &v));
        }
    }

    #[test]
    fn identity_route_is_trivial() {
        let u = Perm::identity(6);
        assert_eq!(shortest_path(&u, &u), vec![u]);
        assert!(sorting_moves(&u).is_empty());
    }
}
