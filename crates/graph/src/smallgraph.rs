//! Explicitly materialized small graphs with exhaustive path/cycle search.
//!
//! Two callers need exact answers on small graphs:
//!
//! * the Lemma-4 **block oracle** in `star-ring`: every 4-vertex of the
//!   `R^4` is isomorphic to `S_4` (24 vertices), and the construction needs
//!   longest healthy paths between prescribed endpoints inside a block;
//! * the **optimality experiments** in `star-verify`: brute-force longest
//!   healthy cycles in `S_4` (and budgeted searches in `S_5`) to witness
//!   that `n! - 2|F_v|` cannot be beaten.
//!
//! The searches are plain DFS with two strong prunes (reachability of all
//! remaining vertices, and unreachable-target cutoff), which is exact and
//! fast at these sizes.

use star_perm::{factorial, Perm};

use crate::Pattern;

/// A dense small graph over vertex ids `0..n_vertices`.
#[derive(Debug, Clone)]
pub struct SmallGraph {
    adj: Vec<Vec<u16>>,
}

/// A growable bitset sized for a [`SmallGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn new(len: usize) -> Self {
        Bits {
            words: vec![0; len.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: u16) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: u16) {
        self.words[i as usize / 64] &= !(1 << (i % 64));
    }

    #[inline]
    fn get(&self, i: u16) -> bool {
        (self.words[i as usize / 64] >> (i % 64)) & 1 == 1
    }
}

impl SmallGraph {
    /// An edgeless graph on `n_vertices` vertices.
    pub fn new(n_vertices: usize) -> Self {
        assert!(n_vertices <= u16::MAX as usize);
        SmallGraph {
            adj: vec![Vec::new(); n_vertices],
        }
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, u: u16, v: u16) {
        assert_ne!(u, v, "no self-loops");
        if !self.adj[u as usize].contains(&v) {
            self.adj[u as usize].push(v);
            self.adj[v as usize].push(u);
        }
    }

    /// The induced subgraph of an embedded `S_r`, with vertex ids equal to
    /// **local ranks** (see [`Pattern::to_local`]).
    pub fn from_pattern(p: &Pattern) -> Self {
        let r = p.r();
        Self::from_star(r)
    }

    /// `S_n` materialized with vertex ids equal to Lehmer ranks. Intended
    /// for `n <= 7`.
    pub fn from_star(n: usize) -> Self {
        let total = factorial(n) as usize;
        let mut g = SmallGraph::new(total);
        for u in Pattern::full(n).vertices() {
            let ur = u.rank() as u16;
            for v in u.neighbors() {
                let vr = v.rank() as u16;
                if ur < vr {
                    g.add_edge(ur, vr);
                }
            }
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u16) -> &[u16] {
        &self.adj[v as usize]
    }

    /// `true` iff `u ~ v`.
    pub fn is_edge(&self, u: u16, v: u16) -> bool {
        self.adj[u as usize].contains(&v)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// `true` iff every unblocked vertex is reachable from `from` through
    /// unblocked, unvisited vertices. Used as a search prune and directly by
    /// resilience tests.
    fn all_remaining_reachable(&self, from: u16, visited: &Bits, blocked: &Bits) -> bool {
        let n = self.n_vertices();
        let mut seen = Bits::new(n);
        let mut stack = vec![from];
        seen.set(from);
        let mut reached = 1usize;
        while let Some(u) = stack.pop() {
            for &w in self.neighbors(u) {
                if !seen.get(w) && !visited.get(w) && !blocked.get(w) {
                    seen.set(w);
                    reached += 1;
                    stack.push(w);
                }
            }
        }
        let mut remaining = 0usize;
        for v in 0..n as u16 {
            if !visited.get(v) && !blocked.get(v) {
                remaining += 1;
            }
        }
        // `from` itself may be visited (the current path head), in which
        // case it is not counted in `remaining`.
        let expect = if visited.get(from) {
            remaining + 1
        } else {
            remaining
        };
        reached == expect
    }

    /// Exact Hamiltonian path search: a path from `from` to `to` visiting
    /// **every** unblocked vertex exactly once. `blocked[v]` removes `v`
    /// from the graph. Returns the vertex sequence or `None`.
    pub fn hamiltonian_path(&self, from: u16, to: u16, blocked: &[bool]) -> Option<Vec<u16>> {
        let need = blocked.iter().filter(|&&b| !b).count();
        self.search_path(from, to, blocked, need, u64::MAX).0
    }

    /// Longest path from `from` to `to` avoiding blocked vertices, exact.
    /// Returns `None` when no path exists at all.
    pub fn longest_path(&self, from: u16, to: u16, blocked: &[bool]) -> Option<Vec<u16>> {
        let n_unblocked = blocked.iter().filter(|&&b| !b).count();
        // Try decreasing target lengths; each attempt is a complete search,
        // and the first success is optimal. (Searching once while tracking
        // the best would also work; the laddered version benefits from the
        // early-exit in `search_path` at each rung.)
        for need in (1..=n_unblocked).rev() {
            if let (Some(p), _) = self.search_path(from, to, blocked, need, u64::MAX) {
                return Some(p);
            }
        }
        None
    }

    /// Path search with an exact vertex-count target and a node budget.
    /// Returns `(path_if_found, budget_exhausted)`.
    pub fn path_with_exact_count(
        &self,
        from: u16,
        to: u16,
        blocked: &[bool],
        count: usize,
        budget: u64,
    ) -> (Option<Vec<u16>>, bool) {
        self.search_path(from, to, blocked, count, budget)
    }

    fn search_path(
        &self,
        from: u16,
        to: u16,
        blocked_slice: &[bool],
        need: usize,
        mut budget: u64,
    ) -> (Option<Vec<u16>>, bool) {
        let n = self.n_vertices();
        assert_eq!(blocked_slice.len(), n);
        let mut blocked = Bits::new(n);
        for (i, &b) in blocked_slice.iter().enumerate() {
            if b {
                blocked.set(i as u16);
            }
        }
        if blocked.get(from) || blocked.get(to) || need == 0 {
            return (None, false);
        }
        if from == to {
            return (if need == 1 { Some(vec![from]) } else { None }, false);
        }
        let mut visited = Bits::new(n);
        visited.set(from);
        let mut path = vec![from];
        let found = self.dfs_path(
            from,
            to,
            need,
            &mut visited,
            &mut path,
            &blocked,
            &mut budget,
        );
        if found {
            (Some(path), false)
        } else {
            (None, budget == 0)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_path(
        &self,
        cur: u16,
        to: u16,
        need: usize,
        visited: &mut Bits,
        path: &mut Vec<u16>,
        blocked: &Bits,
        budget: &mut u64,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        if path.len() == need {
            return cur == to;
        }
        if cur == to {
            return false; // reached the target too early
        }
        // Prune: the target must still be reachable, and when the path must
        // cover everything (need == all unblocked), everything must remain
        // reachable from the head.
        if !self.target_reachable(cur, to, visited, blocked) {
            return false;
        }
        for &w in self.neighbors(cur) {
            if visited.get(w) || blocked.get(w) {
                continue;
            }
            visited.set(w);
            path.push(w);
            if self.dfs_path(w, to, need, visited, path, blocked, budget) {
                return true;
            }
            path.pop();
            visited.clear(w);
        }
        false
    }

    fn target_reachable(&self, from: u16, to: u16, visited: &Bits, blocked: &Bits) -> bool {
        let n = self.n_vertices();
        let mut seen = Bits::new(n);
        let mut stack = vec![from];
        seen.set(from);
        while let Some(u) = stack.pop() {
            for &w in self.neighbors(u) {
                if w == to {
                    return true;
                }
                if !seen.get(w) && !visited.get(w) && !blocked.get(w) {
                    seen.set(w);
                    stack.push(w);
                }
            }
        }
        false
    }

    /// Exact longest simple cycle avoiding blocked vertices, with a search
    /// budget. Returns `(best_cycle, exhausted)`; `best_cycle` is empty when
    /// no cycle exists. When `exhausted` is `false` the result is provably
    /// optimal.
    pub fn longest_cycle(&self, blocked_slice: &[bool], mut budget: u64) -> (Vec<u16>, bool) {
        let n = self.n_vertices();
        assert_eq!(blocked_slice.len(), n);
        let mut blocked = Bits::new(n);
        for (i, &b) in blocked_slice.iter().enumerate() {
            if b {
                blocked.set(i as u16);
            }
        }
        let mut best: Vec<u16> = Vec::new();
        // Anchor the cycle at its minimum vertex id to break symmetry: try
        // each start, forbidding smaller ids on the cycle.
        for start in 0..n as u16 {
            if blocked.get(start) {
                continue;
            }
            let mut blocked_here = blocked.clone();
            for smaller in 0..start {
                blocked_here.set(smaller);
            }
            let mut visited = Bits::new(n);
            visited.set(start);
            let mut path = vec![start];
            self.dfs_cycle(
                start,
                start,
                &mut visited,
                &mut path,
                &blocked_here,
                &mut best,
                &mut budget,
            );
            if budget == 0 {
                return (best, true);
            }
        }
        (best, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_cycle(
        &self,
        cur: u16,
        start: u16,
        visited: &mut Bits,
        path: &mut Vec<u16>,
        blocked: &Bits,
        best: &mut Vec<u16>,
        budget: &mut u64,
    ) {
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        // Upper bound: current path + vertices still reachable from the
        // head cannot beat `best` -> prune.
        let n = self.n_vertices();
        let mut seen = Bits::new(n);
        let mut stack = vec![cur];
        seen.set(cur);
        let mut reachable_extra = 0usize;
        let mut start_reachable = false;
        while let Some(u) = stack.pop() {
            for &w in self.neighbors(u) {
                if w == start {
                    start_reachable = true;
                }
                if !seen.get(w) && !visited.get(w) && !blocked.get(w) {
                    seen.set(w);
                    reachable_extra += 1;
                    stack.push(w);
                }
            }
        }
        if !start_reachable || path.len() + reachable_extra <= best.len() {
            return;
        }
        for &w in self.neighbors(cur) {
            if w == start && path.len() >= 3 {
                if path.len() > best.len() {
                    *best = path.clone();
                }
                continue;
            }
            if visited.get(w) || blocked.get(w) {
                continue;
            }
            visited.set(w);
            path.push(w);
            self.dfs_cycle(w, start, visited, path, blocked, best, budget);
            path.pop();
            visited.clear(w);
            if *budget == 0 {
                return;
            }
        }
    }

    /// `true` iff the unblocked portion of the graph is connected.
    pub fn is_connected_avoiding(&self, blocked_slice: &[bool]) -> bool {
        let n = self.n_vertices();
        let mut blocked = Bits::new(n);
        let mut first = None;
        for (i, &b) in blocked_slice.iter().enumerate() {
            if b {
                blocked.set(i as u16);
            } else if first.is_none() {
                first = Some(i as u16);
            }
        }
        match first {
            None => true,
            Some(f) => {
                let visited = Bits::new(n);
                self.all_remaining_reachable(f, &visited, &blocked)
            }
        }
    }
}

/// Convenience: the rank-indexed blocked array for a set of faulty vertices
/// of `S_n` (ids must be Lehmer ranks, as produced by
/// [`SmallGraph::from_star`]).
pub fn blocked_from_perms(n: usize, faulty: &[Perm]) -> Vec<bool> {
    let mut blocked = vec![false; factorial(n) as usize];
    for f in faulty {
        assert_eq!(f.n(), n);
        blocked[f.rank() as usize] = true;
    }
    blocked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s4() -> SmallGraph {
        SmallGraph::from_star(4)
    }

    #[test]
    fn s4_shape() {
        let g = s4();
        assert_eq!(g.n_vertices(), 24);
        assert_eq!(g.edge_count(), 36);
        assert!(g.is_connected_avoiding(&[false; 24]));
    }

    #[test]
    fn s3_is_six_cycle_hamiltonian() {
        let g = SmallGraph::from_star(3);
        let blocked = vec![false; 6];
        let (cycle, exhausted) = g.longest_cycle(&blocked, u64::MAX);
        assert!(!exhausted);
        assert_eq!(cycle.len(), 6);
    }

    #[test]
    fn s4_is_hamiltonian() {
        let g = s4();
        let blocked = vec![false; 24];
        let (cycle, exhausted) = g.longest_cycle(&blocked, u64::MAX);
        assert!(!exhausted);
        assert_eq!(cycle.len(), 24, "S_4 has a Hamiltonian cycle");
        // Check it is a real cycle.
        for i in 0..cycle.len() {
            assert!(g.is_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
    }

    #[test]
    fn one_fault_longest_cycle_is_22() {
        // Theorem 1 at n = 4: with one fault the longest healthy ring has
        // 4! - 2 = 22 vertices (bipartite bound), and it is achieved.
        let g = s4();
        let mut blocked = vec![false; 24];
        blocked[Perm::identity(4).rank() as usize] = true;
        let (cycle, exhausted) = g.longest_cycle(&blocked, u64::MAX);
        assert!(!exhausted);
        assert_eq!(cycle.len(), 22);
    }

    #[test]
    fn hamiltonian_path_between_adjacent_vertices() {
        let g = s4();
        let u = Perm::identity(4);
        let v = u.star_move(1);
        let blocked = vec![false; 24];
        let p = g
            .hamiltonian_path(u.rank() as u16, v.rank() as u16, &blocked)
            .expect("S_4 is Hamiltonian-laceable for adjacent endpoints");
        assert_eq!(p.len(), 24);
        for w in p.windows(2) {
            assert!(g.is_edge(w[0], w[1]));
        }
        assert_eq!(p[0], u.rank() as u16);
        assert_eq!(p[23], v.rank() as u16);
    }

    #[test]
    fn lemma_4_shape_via_longest_path() {
        // Lemma 4: with one fault, adjacent healthy u, v admit a healthy
        // path of length 4! - 3 (22 vertices). Exhaustive check for one
        // configuration here; the oracle tests in star-ring sweep all.
        let g = s4();
        let u = Perm::from_digits(4, 1234);
        let v = Perm::from_digits(4, 3214); // u.star_move(2)
        assert!(u.is_adjacent(&v));
        let f = Perm::from_digits(4, 2314);
        let mut blocked = vec![false; 24];
        blocked[f.rank() as usize] = true;
        let p = g
            .longest_path(u.rank() as u16, v.rank() as u16, &blocked)
            .expect("path exists");
        assert_eq!(p.len(), 22, "4! - 2 vertices = length 4! - 3 edges");
    }

    #[test]
    fn no_path_when_endpoint_blocked() {
        let g = s4();
        let mut blocked = vec![false; 24];
        blocked[0] = true;
        assert!(g.longest_path(0, 5, &blocked).is_none());
        assert!(g.hamiltonian_path(0, 5, &blocked).is_none());
    }

    #[test]
    fn connectivity_detects_articulation_removal() {
        // Blocking all neighbors of a vertex disconnects it from the rest.
        let g = s4();
        let v = Perm::identity(4);
        let mut blocked = vec![false; 24];
        for nb in v.neighbors() {
            blocked[nb.rank() as usize] = true;
        }
        assert!(!g.is_connected_avoiding(&blocked));
        // Fully-blocked graph counts as (vacuously) connected.
        assert!(g.is_connected_avoiding(&[true; 24]));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = s4();
        let blocked = vec![false; 24];
        let (_, exhausted) = g.longest_cycle(&blocked, 10);
        assert!(exhausted);
    }

    #[test]
    fn path_with_exact_count_finds_and_fails() {
        let g = SmallGraph::from_star(3);
        let blocked = vec![false; 6];
        // On a 6-cycle, between adjacent vertices there are paths with 2 and
        // 6 vertices but none with 3 (parity).
        let u = Perm::identity(3);
        let v = u.star_move(1);
        let (p2, _) =
            g.path_with_exact_count(u.rank() as u16, v.rank() as u16, &blocked, 2, u64::MAX);
        assert!(p2.is_some());
        let (p3, _) =
            g.path_with_exact_count(u.rank() as u16, v.rank() as u16, &blocked, 3, u64::MAX);
        assert!(p3.is_none());
        let (p6, _) =
            g.path_with_exact_count(u.rank() as u16, v.rank() as u16, &blocked, 6, u64::MAX);
        assert!(p6.is_some());
    }
}
