//! Graphviz (DOT) export of star graphs and embedded rings.
//!
//! For small `n` it is genuinely useful to *look* at `S_n` with a ring
//! highlighted; these writers emit standard DOT for `dot`/`neato`.

use std::fmt::Write as _;

use star_perm::Perm;

use crate::StarGraph;

/// Renders `S_n` as a DOT graph. `n <= 5` recommended (`S_5` already has
/// 240 edges).
pub fn star_to_dot(n: usize) -> String {
    let g = StarGraph::new(n).expect("valid dimension");
    let mut out = String::new();
    let _ = writeln!(out, "graph s{n} {{");
    let _ = writeln!(out, "  layout=neato; node [shape=circle, fontsize=9];");
    for u in g.vertices() {
        for v in g.neighbors(&u) {
            if u.rank() < v.rank() {
                let _ = writeln!(out, "  \"{u}\" -- \"{v}\";");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders `S_n` with a ring overlay: ring edges bold/colored, faulty
/// vertices filled red, off-ring healthy vertices gray.
pub fn ring_to_dot(n: usize, ring: &[Perm], faulty: &[Perm]) -> String {
    let g = StarGraph::new(n).expect("valid dimension");
    let mut out = String::new();
    let _ = writeln!(out, "graph ring{n} {{");
    let _ = writeln!(out, "  layout=neato; node [shape=circle, fontsize=9];");
    let on_ring: std::collections::HashSet<u32> = ring.iter().map(Perm::rank).collect();
    for f in faulty {
        let _ = writeln!(out, "  \"{f}\" [style=filled, fillcolor=\"#d62728\"];");
    }
    for u in g.vertices() {
        if !on_ring.contains(&u.rank()) && !faulty.contains(&u) {
            let _ = writeln!(out, "  \"{u}\" [color=gray, fontcolor=gray];");
        }
    }
    // Ring edges (bold), then remaining graph edges (thin).
    let mut ring_edges = std::collections::HashSet::new();
    for i in 0..ring.len() {
        let (a, b) = (&ring[i], &ring[(i + 1) % ring.len()]);
        debug_assert!(a.is_adjacent(b), "ring overlay requires a real ring");
        let key = (a.rank().min(b.rank()), a.rank().max(b.rank()));
        ring_edges.insert(key);
        let _ = writeln!(
            out,
            "  \"{a}\" -- \"{b}\" [penwidth=2.5, color=\"#1f77b4\"];"
        );
    }
    for u in g.vertices() {
        for v in g.neighbors(&u) {
            let key = (u.rank().min(v.rank()), u.rank().max(v.rank()));
            if u.rank() < v.rank() && !ring_edges.contains(&key) {
                let _ = writeln!(out, "  \"{u}\" -- \"{v}\" [color=\"#cccccc\"];");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_is_structurally_complete() {
        let dot = star_to_dot(4);
        // 36 edges, one line each, plus wrapper lines.
        assert_eq!(dot.matches(" -- ").count(), 36);
        assert!(dot.starts_with("graph s4 {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn ring_overlay_marks_everything() {
        // A 22-ring of S_4 avoiding one faulty vertex: the fault is red,
        // the ring bold, and the one remaining healthy vertex gray.
        use crate::smallgraph::SmallGraph;
        let g = SmallGraph::from_star(4);
        let faulty = vec![Perm::identity(4)];
        let mut blocked = vec![false; 24];
        blocked[faulty[0].rank() as usize] = true;
        let (cycle, _) = g.longest_cycle(&blocked, u64::MAX);
        assert_eq!(cycle.len(), 22);
        let ring: Vec<Perm> = cycle
            .into_iter()
            .map(|id| Perm::unrank(4, id as u32).unwrap())
            .collect();
        let dot = ring_to_dot(4, &ring, &faulty);
        assert!(dot.contains("fillcolor=\"#d62728\""));
        assert_eq!(dot.matches("penwidth=2.5").count(), 22);
        assert!(dot.contains("color=gray"));
    }
}
