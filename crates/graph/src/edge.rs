//! Normalized undirected edges of `S_n`.

use core::fmt;

use star_perm::Perm;

use crate::GraphError;

/// An undirected edge of `S_n`, stored with endpoints in canonical (rank)
/// order so `Edge` can be used directly in hash sets for edge-fault models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    lo: Perm,
    hi: Perm,
}

impl Edge {
    /// Creates the edge `{u, v}`, verifying adjacency.
    pub fn new(u: Perm, v: Perm) -> Result<Self, GraphError> {
        if !u.is_adjacent(&v) {
            return Err(GraphError::NotAdjacent { u, v });
        }
        Ok(if u <= v {
            Edge { lo: u, hi: v }
        } else {
            Edge { lo: v, hi: u }
        })
    }

    /// The canonical lower endpoint.
    #[inline]
    pub fn lo(&self) -> &Perm {
        &self.lo
    }

    /// The canonical upper endpoint.
    #[inline]
    pub fn hi(&self) -> &Perm {
        &self.hi
    }

    /// Both endpoints.
    #[inline]
    pub fn endpoints(&self) -> (Perm, Perm) {
        (self.lo, self.hi)
    }

    /// The dimension of the edge: the position `d` with `v = u.star_move(d)`.
    #[inline]
    pub fn dimension(&self) -> usize {
        self.lo
            .edge_dimension_to(&self.hi)
            .expect("Edge invariant: endpoints are adjacent")
    }

    /// `true` iff `v` is one of the two endpoints.
    #[inline]
    pub fn touches(&self, v: &Perm) -> bool {
        self.lo == *v || self.hi == *v
    }

    /// Given one endpoint, returns the other; `None` if `v` is not an
    /// endpoint.
    pub fn other(&self, v: &Perm) -> Option<Perm> {
        if *v == self.lo {
            Some(self.hi)
        } else if *v == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -- {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_endpoint_order() {
        let u = Perm::from_digits(4, 1234);
        let v = u.star_move(2);
        let e1 = Edge::new(u, v).unwrap();
        let e2 = Edge::new(v, u).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(e1.dimension(), 2);
    }

    #[test]
    fn rejects_non_adjacent() {
        let u = Perm::from_digits(4, 1234);
        let w = Perm::from_digits(4, 2314);
        assert!(Edge::new(u, w).is_err());
        assert!(Edge::new(u, u).is_err());
    }

    #[test]
    fn endpoint_queries() {
        let u = Perm::from_digits(5, 21345);
        let v = u.star_move(4);
        let e = Edge::new(u, v).unwrap();
        assert!(e.touches(&u));
        assert!(e.touches(&v));
        assert_eq!(e.other(&u), Some(v));
        assert_eq!(e.other(&v), Some(u));
        assert_eq!(e.other(&Perm::identity(5)), None);
    }
}
