//! Super-vertices and super-edges.
//!
//! When an `(i_1,...,i_{n-r})`-partition decomposes `S_n`, the embedded
//! `S_r`'s are treated as *super-vertices* ("r-vertices"). Two r-vertices
//! are adjacent iff their patterns differ in exactly one pinned position
//! (`dif`); the *super-edge* ("r-edge") between them bundles the `(r-1)!`
//! real edges of `S_n` that cross between them.
//!
//! The geometry of a super-edge (with `d = dif(A, B)`, `x` = A's symbol at
//! `d`, `y` = B's symbol at `d`):
//!
//! * the members of `A` adjacent to `B` are exactly those with symbol `y`
//!   at position 0; the partner of such `u` is `u` with positions `0` and
//!   `d` swapped;
//! * if both sides are partitioned at a free position `j`, the sub-vertex
//!   of `A` pinned to `z` at `j` has an adjacent counterpart in `B`'s
//!   subdivision iff `z != y` (Lemma 1's mechanism) — [`blocked_symbol`]
//!   returns that excluded `y`.

use star_perm::Perm;

use crate::{GraphError, Pattern};

/// A super-edge between two adjacent patterns, with its crossing geometry
/// precomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperEdge {
    a: Pattern,
    b: Pattern,
    dif: usize,
    /// `a`'s pinned symbol at `dif`.
    x: u8,
    /// `b`'s pinned symbol at `dif`.
    y: u8,
}

impl SuperEdge {
    /// The super-edge between `a` and `b`, or an error if they are not
    /// adjacent.
    pub fn between(a: Pattern, b: Pattern) -> Result<Self, GraphError> {
        let dif = a.dif(&b).ok_or_else(|| {
            GraphError::InvalidSuperRing(format!("{a} and {b} are not adjacent super-vertices"))
        })?;
        Ok(SuperEdge {
            a,
            b,
            dif,
            x: a.fixed_symbol(dif).expect("dif position is pinned in a"),
            y: b.fixed_symbol(dif).expect("dif position is pinned in b"),
        })
    }

    /// The `dif` position.
    #[inline]
    pub fn dif(&self) -> usize {
        self.dif
    }

    /// `a`'s pinned symbol at the dif position.
    #[inline]
    pub fn symbol_a(&self) -> u8 {
        self.x
    }

    /// `b`'s pinned symbol at the dif position.
    #[inline]
    pub fn symbol_b(&self) -> u8 {
        self.y
    }

    /// `true` iff `u` (a member of `a`) has a neighbor in `b` — i.e. its
    /// position-0 symbol is `b`'s dif symbol.
    #[inline]
    pub fn is_cross_vertex(&self, u: &Perm) -> bool {
        debug_assert!(self.a.contains(u));
        u.first() == self.y
    }

    /// The neighbor in `b` of a cross vertex `u` of `a`.
    ///
    /// # Panics
    /// Panics if `u` is not a cross vertex.
    pub fn partner(&self, u: &Perm) -> Perm {
        assert!(
            self.is_cross_vertex(u),
            "{u} has no neighbor across {self:?}"
        );
        let v = u.swapped(0, self.dif);
        debug_assert!(self.b.contains(&v));
        debug_assert!(u.is_adjacent(&v));
        v
    }

    /// All members of `a` that have a neighbor in `b` — `(r-1)!` of them.
    pub fn cross_vertices(&self) -> Vec<Perm> {
        self.a
            .vertices()
            .filter(|u| self.is_cross_vertex(u))
            .collect()
    }

    /// All real edges of the super-edge as `(member of a, member of b)`
    /// pairs.
    pub fn real_edges(&self) -> Vec<(Perm, Perm)> {
        self.cross_vertices()
            .into_iter()
            .map(|u| (u, self.partner(&u)))
            .collect()
    }

    /// Number of real edges: `(r-1)!`.
    #[inline]
    pub fn real_edge_count(&self) -> u64 {
        star_perm::factorial(self.a.r() - 1)
    }
}

/// For patterns `a` adjacent to `b`, both about to be partitioned at free
/// position `j`: the unique free symbol `z` of `a` whose sub-vertex
/// `a.sub(j, z)` has **no** adjacent counterpart `b.sub(j, z)` — namely
/// `b`'s symbol at the dif position (it is not free in `b`).
///
/// This is the mechanism behind Lemma 1: a sub-vertex of the middle
/// super-vertex `V` fails to connect to neighbor `U` only for one symbol,
/// so if the two neighbors' excluded symbols differ, every sub-vertex of
/// `V` connects to `U` or `W`.
pub fn blocked_symbol(a: &Pattern, b: &Pattern) -> Result<u8, GraphError> {
    let edge = SuperEdge::between(*a, *b)?;
    Ok(edge.symbol_b())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(spec: &[u8]) -> Pattern {
        Pattern::from_spec(spec).unwrap()
    }

    #[test]
    fn super_edge_geometry() {
        // <**23>_2 vs <**13>_2 in S_4: dif = 2, x = 2, y = 1.
        let a = pat(&[0, 0, 2, 3]);
        let b = pat(&[0, 0, 1, 3]);
        let e = SuperEdge::between(a, b).unwrap();
        assert_eq!(e.dif(), 2);
        assert_eq!(e.symbol_a(), 2);
        assert_eq!(e.symbol_b(), 1);
        assert_eq!(e.real_edge_count(), 1);
        let edges = e.real_edges();
        assert_eq!(edges.len(), 1);
        let (u, v) = edges[0];
        assert!(a.contains(&u) && b.contains(&v));
        assert!(u.is_adjacent(&v));
        assert_eq!(u.first(), 1);
    }

    #[test]
    fn real_edges_are_all_crossing_edges() {
        // <*4**5>_3 vs <*2**5>_3 in S_5: 2! = 2 real edges; verify against a
        // brute-force scan of all cross pairs.
        let a = pat(&[0, 4, 0, 0, 5]);
        let b = pat(&[0, 2, 0, 0, 5]);
        let e = SuperEdge::between(a, b).unwrap();
        let from_struct: std::collections::HashSet<(Perm, Perm)> =
            e.real_edges().into_iter().collect();
        let mut brute = std::collections::HashSet::new();
        for u in a.vertices() {
            for v in b.vertices() {
                if u.is_adjacent(&v) {
                    brute.insert((u, v));
                }
            }
        }
        assert_eq!(from_struct, brute);
        assert_eq!(brute.len() as u64, e.real_edge_count());
    }

    #[test]
    fn blocked_symbol_matches_lemma_1_mechanism() {
        // a = <***45>_3, b = <***35>_3 (dif = 3, x = 4, y = 3): partitioning
        // both at position 1, a.sub(1, z) pairs with b.sub(1, z) iff z != 3.
        let a = pat(&[0, 0, 0, 4, 5]);
        let b = pat(&[0, 0, 0, 3, 5]);
        assert_eq!(blocked_symbol(&a, &b).unwrap(), 3);
        for z in a.free_symbols().iter() {
            let sub_a = a.sub(1, z).unwrap();
            let counterpart_exists = b.free_symbols().contains(z);
            if counterpart_exists {
                let sub_b = b.sub(1, z).unwrap();
                assert!(sub_a.is_adjacent(&sub_b), "z = {z}");
            } else {
                assert_eq!(z, 3, "only the blocked symbol lacks a counterpart");
            }
            // Whatever the counterpart, sub_a must not be adjacent to any
            // *other* sub of b.
            for z2 in b.free_symbols().iter() {
                if z2 != z {
                    let sub_b2 = b.sub(1, z2).unwrap();
                    assert!(!sub_a.is_adjacent(&sub_b2), "z = {z}, z2 = {z2}");
                }
            }
        }
    }

    #[test]
    fn non_adjacent_patterns_rejected() {
        let a = pat(&[0, 0, 2, 3]);
        let c = pat(&[0, 0, 3, 2]);
        assert!(SuperEdge::between(a, c).is_err());
    }
}
