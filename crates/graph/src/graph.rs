//! The [`StarGraph`] facade.

use star_perm::{iter::PermIter, Perm, MAX_N};

use crate::{Edge, GraphError};

/// The n-dimensional star graph `S_n`.
///
/// `StarGraph` is a *combinatorial* graph: it stores only `n` and answers
/// adjacency/membership queries in O(n); vertex sets are never materialized
/// unless explicitly iterated. This keeps `S_10` (3.6M vertices) free until
/// an algorithm actually walks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarGraph {
    n: usize,
}

impl StarGraph {
    /// Creates `S_n`. The paper considers `n >= 4` for ring embeddings,
    /// but the graph itself is defined for any `1 <= n <= MAX_N`
    /// (`S_1` is a vertex, `S_2` an edge, `S_3` a 6-cycle).
    pub fn new(n: usize) -> Result<Self, GraphError> {
        if !(1..=MAX_N).contains(&n) {
            return Err(GraphError::DimensionOutOfRange { n });
        }
        Ok(StarGraph { n })
    }

    /// The dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of vertices, `n!`.
    #[inline]
    pub fn vertex_count(&self) -> u64 {
        star_perm::factorial(self.n)
    }

    /// Number of edges, `n! (n-1) / 2`.
    #[inline]
    pub fn edge_count(&self) -> u64 {
        star_perm::factorial(self.n) * (self.n as u64 - 1) / 2
    }

    /// The regular degree, `n - 1`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n - 1
    }

    /// `true` iff `v` is a vertex of this graph (a permutation of the right
    /// size).
    #[inline]
    pub fn contains(&self, v: &Perm) -> bool {
        v.n() == self.n
    }

    /// `true` iff `u ~ v`.
    #[inline]
    pub fn is_edge(&self, u: &Perm, v: &Perm) -> bool {
        self.contains(u) && u.is_adjacent(v)
    }

    /// The neighbors of `v`, in dimension order.
    pub fn neighbors(&self, v: &Perm) -> impl Iterator<Item = Perm> + use<> {
        debug_assert!(self.contains(v));
        let v = *v;
        (1..v.n()).map(move |d| v.star_move(d))
    }

    /// The edge between `u` and `v`, if adjacent.
    pub fn edge(&self, u: Perm, v: Perm) -> Result<Edge, GraphError> {
        Edge::new(u, v)
    }

    /// All vertices in Lehmer-rank order. O(n!) — only for walks and small-n
    /// exhaustive checks.
    pub fn vertices(&self) -> PermIter {
        PermIter::new(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let g = StarGraph::new(5).unwrap();
        assert_eq!(g.vertex_count(), 120);
        assert_eq!(g.edge_count(), 240);
        assert_eq!(g.degree(), 4);
    }

    #[test]
    fn rejects_bad_dimension() {
        assert!(StarGraph::new(0).is_err());
        assert!(StarGraph::new(13).is_err());
    }

    #[test]
    fn handshake_lemma_small() {
        // Sum of degrees equals twice the edge count for S_4 by explicit
        // enumeration.
        let g = StarGraph::new(4).unwrap();
        let total: usize = g.vertices().map(|v| g.neighbors(&v).count()).sum();
        assert_eq!(total as u64, 2 * g.edge_count());
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let g = StarGraph::new(4).unwrap();
        for u in g.vertices() {
            assert!(!g.is_edge(&u, &u));
            for v in g.neighbors(&u) {
                assert!(g.is_edge(&v, &u));
            }
        }
    }
}
