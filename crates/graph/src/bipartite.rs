//! The bipartition of `S_n`.
//!
//! Every star move is a transposition, so adjacency flips permutation
//! parity: `S_n` is bipartite with partite sets the even and odd
//! permutations, each of size `n!/2` (for `n >= 2`). This is the heart of
//! the paper's optimality argument: if all `|F_v|` faults lie in one partite
//! set, a cycle alternates sides, so it can use at most `n!/2 - |F_v|`
//! vertices from the damaged side and therefore at most `n! - 2|F_v|`
//! vertices in total.

use star_perm::{factorial, Parity, Perm};

/// The partite set of a vertex: [`Parity::Even`] or [`Parity::Odd`].
#[inline]
pub fn partite_set(v: &Perm) -> Parity {
    v.parity()
}

/// Sizes of the two partite sets of `S_n`, `(even, odd)`.
pub fn partite_set_sizes(n: usize) -> (u64, u64) {
    if n == 1 {
        (1, 0)
    } else {
        let half = factorial(n) / 2;
        (half, half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StarGraph;

    #[test]
    fn adjacency_flips_parity_exhaustive_s4() {
        let g = StarGraph::new(4).unwrap();
        for u in g.vertices() {
            for v in g.neighbors(&u) {
                assert_ne!(partite_set(&u), partite_set(&v));
            }
        }
    }

    #[test]
    fn partite_sets_have_equal_size() {
        for n in 2..=8 {
            let (e, o) = partite_set_sizes(n);
            assert_eq!(e, o);
            assert_eq!(e + o, factorial(n));
        }
        assert_eq!(partite_set_sizes(1), (1, 0));
    }

    #[test]
    fn counted_sizes_match_s5() {
        let g = StarGraph::new(5).unwrap();
        let even = g.vertices().filter(|v| partite_set(v).is_even()).count();
        assert_eq!(even as u64, partite_set_sizes(5).0);
    }
}
