//! Cayley symmetries of the star graph.
//!
//! `S_n` is the Cayley graph of the symmetric group under the generators
//! `(0 d)` applied on the right, so **left translation** by any fixed
//! permutation `g` — `v -> g ∘ v` — is a graph automorphism. Left
//! translations act simply transitively on vertices, which is the formal
//! content of "the star graph looks the same from every vertex".
//!
//! Additionally, relabeling the *positions* `1..n-1` (any permutation of
//! the non-pivot positions, acting by conjugation) permutes the edge
//! dimensions, giving edge-transitivity.
//!
//! The embedder quietly relies on both facts: the Lemma-4 oracle
//! canonicalizes arbitrary blocks to one `S_4` (vertex symmetry +
//! dimension relabeling), and test sweeps check one base point and let
//! transitivity cover the rest. This module makes the symmetries
//! first-class and testable.

use star_perm::{Perm, MAX_N};

/// An automorphism of `S_n` of the form `v -> g ∘ relabel_positions(v)`.
///
/// `g` is the left-translation part; `positions` is a permutation of
/// `0..n` fixing 0 that relabels the non-pivot positions (dimension
/// relabeling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Automorphism {
    g: Perm,
    /// positions[i] = where old position i goes; positions[0] == 0.
    positions: [u8; MAX_N],
    n: u8,
}

impl Automorphism {
    /// The identity automorphism.
    pub fn identity(n: usize) -> Self {
        let mut positions = [0u8; MAX_N];
        for (i, slot) in positions.iter_mut().enumerate().take(n) {
            *slot = i as u8;
        }
        Automorphism {
            g: Perm::identity(n),
            positions,
            n: n as u8,
        }
    }

    /// Pure left translation by `g`.
    pub fn translation(g: Perm) -> Self {
        let mut auto = Automorphism::identity(g.n());
        auto.g = g;
        auto
    }

    /// Pure dimension relabeling: `sigma` is a permutation of `1..=n-1`
    /// describing where each non-pivot position goes (`sigma[d-1]` is the
    /// new index of old position `d`).
    ///
    /// # Panics
    /// Panics if `sigma` is not a permutation of `1..=n-1`.
    pub fn dimension_relabel(n: usize, sigma: &[usize]) -> Self {
        assert_eq!(sigma.len(), n - 1, "sigma permutes the n-1 dimensions");
        let mut seen = [false; MAX_N];
        let mut auto = Automorphism::identity(n);
        for (d, &target) in sigma.iter().enumerate() {
            assert!((1..n).contains(&target), "targets are positions 1..n");
            assert!(!seen[target], "sigma must be a permutation");
            seen[target] = true;
            auto.positions[d + 1] = target as u8;
        }
        auto
    }

    /// The automorphism mapping vertex `a` to vertex `b` by left
    /// translation: `g = b ∘ a^{-1}` (vertex-transitivity witness).
    pub fn mapping(a: &Perm, b: &Perm) -> Self {
        assert_eq!(a.n(), b.n());
        Automorphism::translation(b.compose(&a.inverse()))
    }

    /// Applies the automorphism to a vertex.
    pub fn apply(&self, v: &Perm) -> Perm {
        let n = self.n as usize;
        debug_assert_eq!(v.n(), n);
        // Position relabeling first (v' [sigma(i)] = v[i]), then left
        // translation.
        let mut buf = [0u8; MAX_N];
        for i in 0..n {
            buf[self.positions[i] as usize] = v.get(i);
        }
        let relabeled = Perm::from_slice(&buf[..n]).expect("relabeling preserves permutations");
        self.g.compose(&relabeled)
    }

    /// The composite automorphism `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Automorphism) -> Automorphism {
        assert_eq!(self.n, other.n);
        let n = self.n as usize;
        let mut positions = [0u8; MAX_N];
        for (slot, &op) in positions.iter_mut().zip(&other.positions[..n]) {
            *slot = self.positions[op as usize];
        }
        // Translation part: self.g ∘ relabel_self(other.g). Verified
        // against pointwise application in the tests.
        let mut buf = [0u8; MAX_N];
        for i in 0..n {
            buf[self.positions[i] as usize] = other.g.get(i);
        }
        let relabeled = Perm::from_slice(&buf[..n]).expect("relabeling preserves permutations");
        Automorphism {
            g: self.g.compose(&relabeled),
            positions,
            n: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StarGraph;

    fn preserves_adjacency(auto: &Automorphism, n: usize) -> bool {
        let g = StarGraph::new(n).unwrap();
        g.vertices().all(|u| {
            let au = auto.apply(&u);
            g.neighbors(&u).all(|v| au.is_adjacent(&auto.apply(&v)))
        })
    }

    #[test]
    fn translations_are_automorphisms() {
        let g = Perm::from_digits(4, 3142);
        let auto = Automorphism::translation(g);
        assert!(preserves_adjacency(&auto, 4));
    }

    #[test]
    fn dimension_relabelings_are_automorphisms() {
        // Swap dimensions 1 and 3 in S_4.
        let auto = Automorphism::dimension_relabel(4, &[3, 2, 1]);
        assert!(preserves_adjacency(&auto, 4));
        // The image of a dimension-1 edge is a dimension-3 edge.
        let u = Perm::identity(4);
        let v = u.star_move(1);
        let (au, av) = (auto.apply(&u), auto.apply(&v));
        assert_eq!(au.edge_dimension_to(&av), Some(3));
    }

    #[test]
    fn vertex_transitivity_witness() {
        let a = Perm::from_digits(5, 35214);
        let b = Perm::from_digits(5, 51423);
        let auto = Automorphism::mapping(&a, &b);
        assert_eq!(auto.apply(&a), b);
        assert!(preserves_adjacency(&auto, 5));
    }

    #[test]
    fn composition_matches_pointwise_application() {
        let t = Automorphism::translation(Perm::from_digits(4, 2413));
        let r = Automorphism::dimension_relabel(4, &[2, 3, 1]);
        let comp = t.compose(&r);
        for u in StarGraph::new(4).unwrap().vertices() {
            assert_eq!(comp.apply(&u), t.apply(&r.apply(&u)));
        }
    }

    #[test]
    fn identity_fixes_everything() {
        let auto = Automorphism::identity(5);
        let v = Perm::from_digits(5, 42531);
        assert_eq!(auto.apply(&v), v);
    }
}
