//! Error type for star-graph structures.

use core::fmt;

use star_perm::Perm;

/// Errors raised by star-graph construction and decomposition operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The dimension `n` is outside the supported range.
    DimensionOutOfRange {
        /// The requested dimension.
        n: usize,
    },
    /// Two vertices were expected to be adjacent but are not.
    NotAdjacent {
        /// First endpoint.
        u: Perm,
        /// Second endpoint.
        v: Perm,
    },
    /// A vertex does not belong to the graph/pattern it was used with.
    VertexNotInGraph {
        /// The offending vertex.
        v: Perm,
    },
    /// A pattern construction was invalid (duplicate fixed symbols, fixed
    /// position 0, symbol out of range, ...).
    InvalidPattern(String),
    /// A partition was requested at a non-free position or with an invalid
    /// position index.
    InvalidPartitionPosition {
        /// The offending position.
        pos: usize,
    },
    /// A super-ring failed a structural requirement.
    InvalidSuperRing(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DimensionOutOfRange { n } => {
                write!(f, "star graph dimension {n} out of supported range")
            }
            GraphError::NotAdjacent { u, v } => {
                write!(f, "vertices {u} and {v} are not adjacent in the star graph")
            }
            GraphError::VertexNotInGraph { v } => {
                write!(f, "vertex {v} does not belong to the graph or pattern")
            }
            GraphError::InvalidPattern(msg) => write!(f, "invalid pattern: {msg}"),
            GraphError::InvalidPartitionPosition { pos } => {
                write!(f, "cannot partition at position {pos}")
            }
            GraphError::InvalidSuperRing(msg) => write!(f, "invalid super-ring: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}
