//! The `i`-partition and `(i_1,...,i_m)`-partition of embedded sub-stars
//! (Definitions 2 and 3 of the paper).

use star_perm::Perm;

use crate::{GraphError, Pattern};

/// Executes an `i`-partition on `pattern` at don't-care position `pos`
/// (`pos != 0`): the embedded `S_r` splits into `r` embedded `S_{r-1}`'s,
/// one per free symbol, returned in increasing symbol order.
pub fn i_partition(pattern: &Pattern, pos: usize) -> Result<Vec<Pattern>, GraphError> {
    if pos == 0 || pos >= pattern.n() || !pattern.is_free_position(pos) {
        return Err(GraphError::InvalidPartitionPosition { pos });
    }
    pattern
        .free_symbols()
        .iter()
        .map(|s| pattern.sub(pos, s))
        .collect()
}

/// Executes an `(i_1,...,i_m)`-partition: applies each `i_k`-partition in
/// sequence to every pattern produced so far, yielding the
/// `r(r-1)...(r-m+1)` leaf patterns.
pub fn partition_sequence(
    start: &Pattern,
    positions: &[usize],
) -> Result<Vec<Pattern>, GraphError> {
    let mut current = vec![*start];
    for &pos in positions {
        let mut next = Vec::with_capacity(current.len() * start.r());
        for p in &current {
            next.extend(i_partition(p, pos)?);
        }
        current = next;
    }
    Ok(current)
}

/// The leaf pattern containing `v` after pinning the given positions to
/// `v`'s symbols there — i.e. which block of the `(i_1,...,i_m)`-partition
/// the vertex falls into. O(m), no enumeration.
pub fn locate(v: &Perm, positions: &[usize]) -> Result<Pattern, GraphError> {
    let mut p = Pattern::full(v.n());
    for &pos in positions {
        p = p.sub(pos, v.get(pos))?;
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_3_partition() {
        // Executing a 3-partition (our position 2) on <**15*... the paper's
        // < * * 1 5 >_3-ish example: partition <**15>_2? Use S_5's
        // <*_*_*15>... Simplest faithful check: partition <* * * 1 5>_3 at
        // position 2 gives three S_2 patterns with symbols {2,3,4} there.
        let p = Pattern::from_spec(&[0, 0, 0, 1, 5]).unwrap();
        let parts = i_partition(&p, 2).unwrap();
        assert_eq!(parts.len(), 3);
        let syms: Vec<u8> = parts.iter().map(|q| q.fixed_symbol(2).unwrap()).collect();
        assert_eq!(syms, vec![2, 3, 4]);
        for q in &parts {
            assert_eq!(q.r(), 2);
        }
    }

    #[test]
    fn partition_rejects_pinned_or_zero_positions() {
        let p = Pattern::from_spec(&[0, 0, 3, 0]).unwrap();
        assert!(i_partition(&p, 0).is_err());
        assert!(i_partition(&p, 2).is_err());
        assert!(i_partition(&p, 1).is_ok());
    }

    #[test]
    fn sequence_counts_and_disjoint_cover() {
        // A (2,3)-partition (positions 1,2) of S_4 produces 4*3 = 12
        // embedded S_2's that partition the 24 vertices.
        let parts = partition_sequence(&Pattern::full(4), &[1, 2]).unwrap();
        assert_eq!(parts.len(), 12);
        let mut seen = std::collections::HashSet::new();
        for q in &parts {
            assert_eq!(q.r(), 2);
            for v in q.vertices() {
                assert!(seen.insert(v), "blocks must be disjoint");
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn locate_agrees_with_enumeration() {
        let positions = [3, 1];
        let parts = partition_sequence(&Pattern::full(5), &positions).unwrap();
        for v in Pattern::full(5).vertices().step_by(7) {
            let home = locate(&v, &positions).unwrap();
            assert!(home.contains(&v));
            assert_eq!(parts.iter().filter(|q| q.contains(&v)).count(), 1);
            assert!(parts.contains(&home));
        }
    }
}
