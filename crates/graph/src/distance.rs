//! Exact star-graph distance.

use star_perm::{cycles::CycleStructure, Perm};

/// The exact distance between two vertices of `S_n`.
///
/// `S_n` is the Cayley graph of the symmetric group under the transpositions
/// `(0 d)` applied on the right, so distance is left-invariant:
/// `d(u, v) = d(id, u^{-1} ∘ v)`, and the distance to the identity has the
/// Akers–Krishnamurthy closed form over the cycle structure (see
/// [`star_perm::cycles`]).
///
/// # Panics
/// Panics if the permutations have different sizes.
pub fn distance(u: &Perm, v: &Perm) -> usize {
    assert_eq!(u.n(), v.n(), "distance between different-size permutations");
    let w = u.inverse().compose(v);
    CycleStructure::of(&w).star_distance_to_identity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    #[test]
    fn distance_zero_and_one() {
        let u = Perm::from_digits(5, 31254);
        assert_eq!(distance(&u, &u), 0);
        for v in u.neighbors() {
            assert_eq!(distance(&u, &v), 1);
        }
    }

    #[test]
    fn symmetric() {
        let u = Perm::from_digits(6, 123456);
        let v = Perm::from_digits(6, 654321);
        assert_eq!(distance(&u, &v), distance(&v, &u));
    }

    #[test]
    fn matches_bfs_on_s5() {
        // Cross-validate the closed form against brute-force BFS from a
        // non-identity source (exercises left-invariance too).
        let src = Perm::from_digits(5, 24135);
        let dist = bfs::distances_from(5, &src);
        for rank in 0..120u32 {
            let v = Perm::unrank(5, rank).unwrap();
            assert_eq!(
                distance(&src, &v) as u32,
                dist[rank as usize],
                "distance({src}, {v})"
            );
        }
    }

    #[test]
    fn matches_bfs_on_s6_identity() {
        let src = Perm::identity(6);
        let dist = bfs::distances_from(6, &src);
        for rank in (0..720u32).step_by(7) {
            let v = Perm::unrank(6, rank).unwrap();
            assert_eq!(distance(&src, &v) as u32, dist[rank as usize]);
        }
    }
}
