//! Fault-tolerant point-to-point routing.
//!
//! [`routing`](crate::routing) gives optimal routes on the healthy graph;
//! this module routes **around** dead processors and links. The router is
//! A* over the implicit graph with the closed-form fault-free distance as
//! its heuristic — admissible (faults only lengthen routes), so returned
//! routes are *shortest in the faulty graph*, and the search touches only
//! the neighborhood the detour actually needs instead of materializing
//! `n!` vertices.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use star_perm::Perm;

use crate::distance;

/// Outcome of a fault-avoiding route query.
#[derive(Debug, Clone)]
pub struct Route {
    /// The full vertex sequence `[src, ..., dst]`.
    pub path: Vec<Perm>,
    /// Number of vertices the search expanded (effort diagnostic).
    pub expanded: usize,
}

impl Route {
    /// Route length in hops.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Shortest route from `src` to `dst` through healthy vertices and links
/// only, or `None` if every route is cut. `is_blocked_vertex(v)` and
/// `is_blocked_edge(a, b)` describe the faults (the source and destination
/// must not be blocked).
///
/// # Examples
///
/// ```
/// use star_graph::fault_routing::route_avoiding_vertices;
/// use star_perm::Perm;
///
/// let u = Perm::identity(5);
/// let v = u.star_move(3);
/// // With the direct neighbor healthy the route is one hop...
/// assert_eq!(route_avoiding_vertices(&u, &v, &[]).unwrap().hops(), 1);
/// // ...and a detour is found when intermediate processors die.
/// let via = u.star_move(2);
/// let far = Perm::from_digits(5, 54321);
/// let route = route_avoiding_vertices(&u, &far, &[via]).unwrap();
/// assert!(route.path.iter().all(|w| *w != via));
/// ```
pub fn route_avoiding<V, E>(
    src: &Perm,
    dst: &Perm,
    is_blocked_vertex: V,
    is_blocked_edge: E,
) -> Option<Route>
where
    V: Fn(&Perm) -> bool,
    E: Fn(&Perm, &Perm) -> bool,
{
    assert_eq!(src.n(), dst.n(), "routing between different dimensions");
    assert!(
        !is_blocked_vertex(src) && !is_blocked_vertex(dst),
        "endpoints must be healthy"
    );
    if src == dst {
        return Some(Route {
            path: vec![*src],
            expanded: 0,
        });
    }

    // A* with g = hops so far, h = fault-free distance (admissible and
    // consistent: one hop changes the true distance by at most 1).
    let mut open: BinaryHeap<Reverse<(usize, u32)>> = BinaryHeap::new();
    let mut g_score: HashMap<u32, usize> = HashMap::new();
    let mut parent: HashMap<u32, u32> = HashMap::new();
    let n = src.n();
    let src_rank = src.rank();
    let dst_rank = dst.rank();
    g_score.insert(src_rank, 0);
    open.push(Reverse((distance(src, dst), src_rank)));
    let mut expanded = 0usize;

    while let Some(Reverse((_, rank))) = open.pop() {
        let u = Perm::unrank(n, rank).expect("rank from the frontier");
        let g_u = g_score[&rank];
        if rank == dst_rank {
            // Reconstruct.
            let mut path = vec![u];
            let mut cur = rank;
            while let Some(&p) = parent.get(&cur) {
                path.push(Perm::unrank(n, p).expect("parent rank"));
                cur = p;
            }
            path.reverse();
            return Some(Route { path, expanded });
        }
        expanded += 1;
        for w in u.neighbors() {
            if is_blocked_vertex(&w) || is_blocked_edge(&u, &w) {
                continue;
            }
            let w_rank = w.rank();
            let tentative = g_u + 1;
            if g_score.get(&w_rank).is_none_or(|&g| tentative < g) {
                g_score.insert(w_rank, tentative);
                parent.insert(w_rank, rank);
                open.push(Reverse((tentative + distance(&w, dst), w_rank)));
            }
        }
    }
    None
}

/// Convenience wrapper for the common vertex-faults-only case. (The
/// full-featured `FaultSet` lives in `star-fault`, which depends on this
/// crate; callers there adapt their sets into the closure form of
/// [`route_avoiding`].)
pub fn route_avoiding_vertices(src: &Perm, dst: &Perm, faulty: &[Perm]) -> Option<Route> {
    route_avoiding(src, dst, |v| faulty.contains(v), |_, _| false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    #[test]
    fn matches_plain_distance_without_faults() {
        let u = Perm::from_digits(6, 351624);
        let v = Perm::from_digits(6, 123456);
        let route = route_avoiding_vertices(&u, &v, &[]).unwrap();
        assert_eq!(route.hops(), distance(&u, &v));
        for w in route.path.windows(2) {
            assert!(w[0].is_adjacent(&w[1]));
        }
    }

    #[test]
    fn detours_around_a_wall_optimally() {
        // Block several vertices near the straight-line route and compare
        // against brute-force BFS distances in the faulty graph.
        let n = 5;
        let u = Perm::identity(n);
        let faulty: Vec<Perm> = u.neighbors().take(2).collect();
        let blocked = |v: &Perm| faulty.contains(v);
        let dist = bfs::distances_from_avoiding(n, &u, blocked);
        for rank in (0..120u32).step_by(11) {
            let v = Perm::unrank(n, rank).unwrap();
            if blocked(&v) {
                continue;
            }
            let route = route_avoiding_vertices(&u, &v, &faulty);
            match route {
                Some(r) => {
                    assert_eq!(r.hops() as u32, dist[rank as usize], "to {v}");
                    assert!(r.path.iter().all(|w| !blocked(w)));
                }
                None => assert_eq!(dist[rank as usize], u32::MAX),
            }
        }
    }

    #[test]
    fn edge_faults_respected() {
        let u = Perm::identity(4);
        let v = u.star_move(2);
        // Cut the direct edge; route must take a detour of odd length >= 3.
        let route = route_avoiding(
            &u,
            &v,
            |_| false,
            |a, b| (a == &u && b == &v) || (a == &v && b == &u),
        )
        .unwrap();
        assert!(route.hops() >= 3);
        assert_eq!(route.path.first(), Some(&u));
        assert_eq!(route.path.last(), Some(&v));
        for w in route.path.windows(2) {
            assert!(!(w[0] == u && w[1] == v || w[0] == v && w[1] == u));
        }
    }

    #[test]
    fn fully_enclosed_target_is_unreachable() {
        let n = 4;
        let dst = Perm::identity(n);
        let wall: Vec<Perm> = dst.neighbors().collect();
        let src = Perm::from_digits(4, 4321);
        assert!(route_avoiding_vertices(&src, &dst, &wall).is_none());
    }

    #[test]
    fn search_effort_stays_local_for_easy_routes() {
        // With no faults the A* heuristic is exact, so expansions stay
        // around the route length even in S_7 (5040 vertices).
        let u = Perm::from_digits(7, 7654321);
        let v = Perm::from_digits(7, 1234567);
        let route = route_avoiding_vertices(&u, &v, &[]).unwrap();
        assert!(
            route.expanded <= 20 * route.hops().max(1),
            "{}",
            route.expanded
        );
    }
}
