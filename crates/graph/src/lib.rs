//! # star-graph
//!
//! The n-dimensional star graph `S_n` and the decomposition machinery the
//! paper's construction is built on.
//!
//! ## The graph
//!
//! Vertices of [`StarGraph`] are permutations of `1..=n` ([`star_perm::Perm`]);
//! `u ~ v` iff `v = u` with position 0 swapped with some position `d`
//! (`1 <= d <= n-1`, the *dimension-`d` edge*). `S_n` is `(n-1)`-regular,
//! vertex- and edge-transitive, bipartite with partite sets the even/odd
//! permutations, and has diameter `⌊3(n-1)/2⌋`.
//!
//! - [`distance`] — exact distance via the Akers–Krishnamurthy cycle
//!   formula; [`routing::shortest_path`] constructs an optimal route;
//!   [`fault_routing::route_avoiding`] routes around dead
//!   processors/links (A* with the exact distance as heuristic).
//! - [`bfs`] — brute-force breadth-first search used to cross-validate the
//!   closed forms for small `n` and to power exhaustive verification.
//!
//! ## Decomposition (Section 2 of the paper)
//!
//! - [`Pattern`] — an embedded `S_r` written `<s_1 s_2 ... s_n>_r`, where
//!   position 0 is always a don't-care and exactly `r` positions are
//!   don't-cares.
//! - [`partition`] — the `i`-partition and `(i_1,...,i_m)`-partition
//!   (Definitions 2 and 3).
//! - [`supervertex`] — adjacency of embedded sub-stars, `dif`, and the real
//!   edges inside a super-edge (an `r`-edge comprises `(r-1)!` edges).
//! - [`SuperRing`] — an `R^r`: a ring of `r`-vertices (Definition 4), plus
//!   the paper's structural property **(P2)**.
//! - [`smallgraph`] — exhaustive path/cycle search on explicitly
//!   materialized small graphs (the 24-vertex `S_4` blocks, and exhaustive
//!   optimality checks).
//! - [`automorphism`] — the Cayley symmetries (vertex/edge transitivity)
//!   the construction exploits, as first-class maps.
//! - [`export`] — Graphviz DOT writers for small graphs and ring overlays.

mod bipartite;
mod distance;
mod edge;
mod error;
mod graph;
mod pattern;
mod properties;
mod ring;

pub mod automorphism;
pub mod bfs;
pub mod export;
pub mod fault_routing;
pub mod partition;
pub mod routing;
pub mod smallgraph;
pub mod supervertex;

pub use bipartite::{partite_set, partite_set_sizes};
pub use distance::distance;
pub use edge::Edge;
pub use error::GraphError;
pub use graph::StarGraph;
pub use pattern::{Pattern, SymbolSet};
pub use properties::{
    average_distance, diameter, distance_distribution, edge_count, girth, vertex_count,
};
pub use ring::SuperRing;
