//! Closed-form topological properties of `S_n`.

use star_perm::factorial;

/// Number of vertices of `S_n`: `n!`.
#[inline]
pub fn vertex_count(n: usize) -> u64 {
    factorial(n)
}

/// Number of edges of `S_n`: `n!(n-1)/2`.
#[inline]
pub fn edge_count(n: usize) -> u64 {
    factorial(n) * (n as u64).saturating_sub(1) / 2
}

/// Diameter of `S_n`: `⌊3(n-1)/2⌋` (Akers–Krishnamurthy).
#[inline]
pub fn diameter(n: usize) -> usize {
    3 * (n - 1) / 2
}

/// Girth of `S_n` for `n >= 3`: 6. The star graph is bipartite (no odd
/// cycles) and triangle/4-cycle-free; `S_3` itself is a 6-cycle.
#[inline]
pub fn girth(n: usize) -> Option<usize> {
    if n >= 3 {
        Some(6)
    } else {
        None
    }
}

/// The distance distribution of `S_n` from any vertex (vertex-transitivity
/// makes the base point irrelevant): entry `d` counts the vertices at
/// distance exactly `d`. Computed by BFS; intended for `n <= 8`.
pub fn distance_distribution(n: usize) -> Vec<u64> {
    let dist = crate::bfs::distances_from(n, &star_perm::Perm::identity(n));
    let mut counts = vec![0u64; diameter(n) + 1];
    for d in dist {
        counts[d as usize] += 1;
    }
    counts
}

/// The average inter-vertex distance of `S_n` (a latency figure of merit
/// for the topology). BFS-based; intended for `n <= 8`.
pub fn average_distance(n: usize) -> f64 {
    let counts = distance_distribution(n);
    let total: u64 = counts.iter().sum();
    let weighted: u64 = counts.iter().enumerate().map(|(d, &c)| d as u64 * c).sum();
    weighted as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StarGraph;
    use star_perm::Perm;

    #[test]
    fn formulas_small() {
        assert_eq!(vertex_count(4), 24);
        assert_eq!(edge_count(4), 36);
        assert_eq!(diameter(4), 4);
        assert_eq!(diameter(5), 6);
        assert_eq!(girth(3), Some(6));
        assert_eq!(girth(2), None);
    }

    #[test]
    fn distance_distribution_known_values() {
        // S_3 is a 6-cycle: 1, 2, 2, 1.
        assert_eq!(distance_distribution(3), vec![1, 2, 2, 1]);
        // S_4: 24 vertices, diameter 4; shells sum to 24 and start 1, 3
        // (degree), ...
        let d4 = distance_distribution(4);
        assert_eq!(d4.iter().sum::<u64>(), 24);
        assert_eq!(d4[0], 1);
        assert_eq!(d4[1], 3);
        assert_eq!(d4.len(), 5);
        assert!(
            d4.iter().all(|&c| c > 0),
            "every shell up to the diameter is non-empty"
        );
    }

    #[test]
    fn average_distance_is_sane() {
        let avg = average_distance(5);
        assert!(avg > 1.0 && avg < diameter(5) as f64);
        // Exact check against a hand-computed value for S_3 (6-cycle):
        // (0 + 1+1 + 2+2 + 3) / 6 = 1.5.
        assert!((average_distance(3) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn girth_six_no_short_cycles_s4() {
        // Exhaustively verify there is no cycle of length < 6 through the
        // identity of S_4 (vertex-transitivity extends this to all
        // vertices): count closed walks avoiding immediate backtracking.
        let g = StarGraph::new(4).unwrap();
        let id = Perm::identity(4);
        // DFS for simple cycles through `id` of length 3..=5.
        fn dfs(
            g: &StarGraph,
            start: &Perm,
            current: &Perm,
            visited: &mut Vec<Perm>,
            max_len: usize,
            found: &mut bool,
        ) {
            if *found || visited.len() > max_len {
                return;
            }
            for nb in g.neighbors(current) {
                if nb == *start && visited.len() >= 3 {
                    *found = true;
                    return;
                }
                if !visited.contains(&nb) && nb != *start {
                    visited.push(nb);
                    dfs(g, start, &nb, visited, max_len, found);
                    visited.pop();
                }
            }
        }
        let mut found = false;
        let mut visited = vec![id];
        dfs(&g, &id, &id, &mut visited, 5, &mut found);
        assert!(!found, "S_4 must have no cycle shorter than 6");

        let mut found6 = false;
        let mut visited = vec![id];
        dfs(&g, &id, &id, &mut visited, 6, &mut found6);
        assert!(found6, "S_4 must have a 6-cycle");
    }
}
