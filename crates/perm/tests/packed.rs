//! Property tests: [`PackedPerm`] is a lossless, operation-preserving
//! mirror of [`Perm`].
//!
//! The flat-arena expansion core trusts the packed representation for
//! seam endpoints and block templates, so every primitive it uses —
//! conversion, position reads, swaps, star moves, adjacency, parity —
//! must agree with the byte-array reference implementation on all inputs.

use proptest::prelude::*;
use star_perm::{factorial, packed::PackedPerm, Perm};

/// Strategy: a random permutation of size `n` for `n in 2..=9`.
fn arb_perm() -> impl Strategy<Value = Perm> {
    (2usize..=9).prop_flat_map(|n| {
        (Just(n), 0..factorial(n) as u32)
            .prop_map(|(n, rank)| Perm::unrank(n, rank).expect("rank in range"))
    })
}

/// Strategy: two same-size permutations.
fn arb_perm_pair() -> impl Strategy<Value = (Perm, Perm)> {
    (2usize..=9).prop_flat_map(|n| {
        let f = factorial(n) as u32;
        (0..f, 0..f).prop_map(move |(a, b)| {
            (
                Perm::unrank(n, a).expect("rank in range"),
                Perm::unrank(n, b).expect("rank in range"),
            )
        })
    })
}

proptest! {
    #[test]
    fn pack_unpack_roundtrip(p in arb_perm()) {
        let q = PackedPerm::from_perm(&p);
        prop_assert_eq!(q.to_perm(), p);
        prop_assert_eq!(PackedPerm::from_raw(q.n(), q.bits()).unwrap(), q);
        prop_assert_eq!(Perm::from(q), p);
        prop_assert_eq!(PackedPerm::from(p), q);
    }

    #[test]
    fn reads_match(p in arb_perm(), raw in 0usize..16) {
        let q = PackedPerm::from_perm(&p);
        let pos = raw % p.n();
        prop_assert_eq!(q.get(pos), p.get(pos));
        prop_assert_eq!(q.first(), p.first());
        prop_assert_eq!(q.n(), p.n());
    }

    #[test]
    fn swap_and_star_move_match(p in arb_perm(), ri in 0usize..16, rj in 0usize..16) {
        let q = PackedPerm::from_perm(&p);
        let (i, j) = (ri % p.n(), rj % p.n());
        prop_assert_eq!(q.swapped(i, j).to_perm(), p.swapped(i, j));
        if j >= 1 {
            prop_assert_eq!(q.star_move(j).to_perm(), p.star_move(j));
            // Involution, in the packed domain.
            prop_assert_eq!(q.star_move(j).star_move(j), q);
        }
    }

    #[test]
    fn adjacency_matches((a, b) in arb_perm_pair()) {
        let (qa, qb) = (PackedPerm::from_perm(&a), PackedPerm::from_perm(&b));
        prop_assert_eq!(qa.edge_dimension_to(&qb), a.edge_dimension_to(&b));
        prop_assert_eq!(qa.is_adjacent(&qb), a.is_adjacent(&b));
    }

    #[test]
    fn parity_matches(p in arb_perm()) {
        prop_assert_eq!(PackedPerm::from_perm(&p).parity(), p.parity());
    }

    #[test]
    fn ordering_and_hashing_agree_with_equality((a, b) in arb_perm_pair()) {
        let (qa, qb) = (PackedPerm::from_perm(&a), PackedPerm::from_perm(&b));
        prop_assert_eq!(qa == qb, a == b);
        // Same-size packed ordering is positionwise from the low nibble,
        // which is position 0 — the same most-significant position a
        // lexicographic comparison of the byte array starts at only when
        // they differ there; all we guarantee (and rely on) is equality
        // consistency.
        prop_assert_eq!(qa.cmp(&qb) == std::cmp::Ordering::Equal,
                        a.cmp(&b) == std::cmp::Ordering::Equal);
    }

    #[test]
    fn corrupted_raw_bits_rejected(p in arb_perm(), pos in 0usize..9, nib in 0u64..16) {
        let q = PackedPerm::from_perm(&p);
        let pos = pos % p.n();
        let cleared = q.bits() & !(0xF << (4 * pos));
        let mutated = cleared | (nib << (4 * pos));
        if mutated != q.bits() {
            // Any single-nibble change breaks the permutation property
            // (duplicate, zero, or out-of-range symbol).
            prop_assert!(PackedPerm::from_raw(p.n(), mutated).is_err());
        }
    }
}
