//! Property-based tests for the permutation substrate.

use proptest::prelude::*;
use star_perm::{factorial, iter::PermIter, Parity, Perm};

/// Strategy: a random permutation of size `n` for `n in 2..=9`.
fn arb_perm() -> impl Strategy<Value = Perm> {
    (2usize..=9).prop_flat_map(|n| {
        (Just(n), 0..factorial(n) as u32)
            .prop_map(|(n, rank)| Perm::unrank(n, rank).expect("rank in range"))
    })
}

/// Strategy: two same-size permutations.
fn arb_perm_pair() -> impl Strategy<Value = (Perm, Perm)> {
    (2usize..=9).prop_flat_map(|n| {
        let f = factorial(n) as u32;
        (0..f, 0..f).prop_map(move |(a, b)| {
            (
                Perm::unrank(n, a).expect("rank in range"),
                Perm::unrank(n, b).expect("rank in range"),
            )
        })
    })
}

proptest! {
    #[test]
    fn rank_unrank_roundtrip(p in arb_perm()) {
        prop_assert_eq!(Perm::unrank(p.n(), p.rank()).unwrap(), p);
    }

    #[test]
    fn inverse_is_involutive_and_cancels(p in arb_perm()) {
        prop_assert_eq!(p.inverse().inverse(), p);
        prop_assert_eq!(p.compose(&p.inverse()), Perm::identity(p.n()));
        prop_assert_eq!(p.inverse().compose(&p), Perm::identity(p.n()));
    }

    #[test]
    fn composition_parity_is_additive((a, b) in arb_perm_pair()) {
        let expected = if a.parity() == b.parity() {
            Parity::Even
        } else {
            Parity::Odd
        };
        prop_assert_eq!(a.compose(&b).parity(), expected);
    }

    #[test]
    fn star_moves_are_involutions_and_flip_parity(p in arb_perm(), raw_d in 1usize..16) {
        let d = 1 + raw_d % (p.n().max(2) - 1);
        prop_assume!(d < p.n());
        let q = p.star_move(d);
        prop_assert_eq!(q.star_move(d), p);
        prop_assert_ne!(q.parity(), p.parity());
        prop_assert!(p.is_adjacent(&q));
        prop_assert_eq!(p.edge_dimension_to(&q), Some(d));
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive((a, b) in arb_perm_pair()) {
        prop_assert_eq!(a.is_adjacent(&b), b.is_adjacent(&a));
        prop_assert!(!a.is_adjacent(&a));
    }

    #[test]
    fn position_of_inverts_get(p in arb_perm(), raw in 0usize..16) {
        let pos = raw % p.n();
        prop_assert_eq!(p.position_of(p.get(pos)), pos);
    }

    #[test]
    fn inverse_swaps_rank_extremes_consistently(p in arb_perm()) {
        // The inverse of a permutation has the same cycle type, hence the
        // same parity.
        prop_assert_eq!(p.inverse().parity(), p.parity());
    }
}

#[test]
fn iterator_is_exactly_rank_order_s6() {
    let mut count = 0u32;
    for (i, p) in PermIter::new(6).enumerate() {
        assert_eq!(p.rank(), i as u32);
        count += 1;
    }
    assert_eq!(count as u64, factorial(6));
}
