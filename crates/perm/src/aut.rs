//! Automorphisms of the star graph `S_n`.
//!
//! `S_n` is the Cayley graph of `Sym(n)` with the generating set
//! `T = { (1, i) : 2 <= i <= n }` (our `star_move(d)` right-multiplies by
//! the transposition `(1, d+1)`). Its automorphism group is
//!
//! ```text
//! Aut(S_n) = { p ↦ g ∘ p ∘ h : g ∈ Sym(n), h ∈ Stab_1 }
//! ```
//!
//! where `Stab_1 = { h : h(1) = 1 }` is the stabilizer of symbol 1 —
//! left multiplication by any `g` permutes vertices freely (Cayley graphs
//! are vertex-transitive), while right multiplication must normalize the
//! generating set, and `h^{-1} (1, i) h = (h^{-1}(1), h^{-1}(i))` lands
//! back in `T` exactly when `h` fixes 1. The group has order
//! `n! * (n-1)!`. Right multiplication by `h` relabels edge *dimensions*:
//! the dimension-`d` edge maps to dimension `h^{-1}(d+1) - 1`
//! ([`Aut::map_dimension`]).
//!
//! [`Aut`] is the workspace's witness type for the symmetry-canonical
//! oracle: canonicalizing a fault set produces the automorphism that maps
//! the caller's frame to the canonical frame, and the inverse maps a
//! stored ring back.

use crate::{factorial, Perm, PermError, MAX_N};

/// An automorphism of `S_n`: the map `p ↦ g ∘ p ∘ h` with `h(1) = 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Aut {
    g: Perm,
    h: Perm,
}

impl Aut {
    /// The identity automorphism of `S_n`.
    ///
    /// # Panics
    /// Panics if `n` is outside `1..=MAX_N` (via [`Perm::identity`]).
    pub fn identity(n: usize) -> Self {
        Aut {
            g: Perm::identity(n),
            h: Perm::identity(n),
        }
    }

    /// Builds an automorphism from its left part `g` and right part `h`,
    /// validating that they have the same size and that `h` fixes symbol 1
    /// (otherwise `p ↦ g ∘ p ∘ h` is not a graph automorphism of `S_n`).
    pub fn new(g: Perm, h: Perm) -> Result<Self, PermError> {
        if g.n() != h.n() {
            return Err(PermError::SizeMismatch {
                left: g.n(),
                right: h.n(),
            });
        }
        if h.get(0) != 1 {
            return Err(PermError::NotAnAutomorphism);
        }
        Ok(Aut { g, h })
    }

    /// The number of automorphisms of `S_n`: `n! * (n-1)!`.
    pub fn order(n: usize) -> u64 {
        factorial(n) * factorial(n - 1)
    }

    /// The number of valid right parts `h` (the stabilizer of symbol 1):
    /// `(n-1)!`.
    pub fn stab_count(n: usize) -> u64 {
        factorial(n - 1)
    }

    /// Decodes the `r`-th element of `Stab_1` (`0 <= r < (n-1)!`): the
    /// permutation fixing 1 whose action on `{2..n}` is the rank-`r`
    /// permutation in Lehmer order.
    ///
    /// # Panics
    /// Panics if `n < 2`, `n > MAX_N`, or `r >= (n-1)!`.
    pub fn stab_unrank(n: usize, r: u64) -> Perm {
        assert!((2..=MAX_N).contains(&n), "stab_unrank: n {n} out of range");
        let sub = Perm::unrank(n - 1, u32::try_from(r).expect("stab rank fits u32"))
            .expect("stab rank in range");
        let mut symbols = [0u8; MAX_N];
        symbols[0] = 1;
        for i in 0..n - 1 {
            symbols[i + 1] = sub.get(i) + 1;
        }
        Perm::from_slice_trusted(&symbols[..n])
    }

    /// Builds the automorphism indexed by `(g_rank, h_rank)` with
    /// `g_rank < n!` and `h_rank < (n-1)!`; ranks are reduced modulo those
    /// bounds, so any `u64` pair (e.g. from an RNG) selects a uniform
    /// automorphism when the inputs are uniform.
    ///
    /// # Panics
    /// Panics if `n` is outside `2..=MAX_N`.
    pub fn from_ranks(n: usize, g_rank: u64, h_rank: u64) -> Self {
        assert!((2..=MAX_N).contains(&n), "from_ranks: n {n} out of range");
        let g = Perm::unrank(n, (g_rank % factorial(n)) as u32).expect("reduced rank in range");
        let h = Aut::stab_unrank(n, h_rank % factorial(n - 1));
        Aut { g, h }
    }

    /// The permutation size `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The left part `g` (free vertex relabeling).
    #[inline]
    pub fn g(&self) -> &Perm {
        &self.g
    }

    /// The right part `h` (dimension relabeling; fixes symbol 1).
    #[inline]
    pub fn h(&self) -> &Perm {
        &self.h
    }

    /// `true` iff this is the identity automorphism.
    pub fn is_identity(&self) -> bool {
        self.g == Perm::identity(self.n()) && self.h == Perm::identity(self.n())
    }

    /// Applies the automorphism to a vertex: `g ∘ p ∘ h`.
    #[inline]
    pub fn apply(&self, p: &Perm) -> Perm {
        self.g.compose(&p.compose(&self.h))
    }

    /// The inverse automorphism: `p ↦ g^{-1} ∘ p ∘ h^{-1}`.
    pub fn inverse(&self) -> Aut {
        Aut {
            g: self.g.inverse(),
            h: self.h.inverse(),
        }
    }

    /// Composition `self ∘ other` (apply `other` first, then `self`):
    /// `(self ∘ other)(p) = g_s ∘ (g_o ∘ p ∘ h_o) ∘ h_s`.
    pub fn compose(&self, other: &Aut) -> Aut {
        Aut {
            g: self.g.compose(&other.g),
            h: other.h.compose(&self.h),
        }
    }

    /// Where the dimension-`d` edge class lands under this automorphism:
    /// `p —d— p.star_move(d)` maps to an edge of dimension
    /// `h^{-1}(d+1) - 1`.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d >= n`.
    pub fn map_dimension(&self, d: usize) -> usize {
        assert!(d >= 1 && d < self.n(), "invalid star dimension {d}");
        let hinv = self.h.inverse();
        hinv.get(d) as usize - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perms(n: usize) -> impl Iterator<Item = Perm> {
        (0..factorial(n) as u32).map(move |r| Perm::unrank(n, r).unwrap())
    }

    #[test]
    fn new_rejects_h_not_fixing_one() {
        let g = Perm::identity(4);
        let h = Perm::from_digits(4, 2134);
        assert!(Aut::new(g, h).is_err());
        let h = Perm::from_digits(4, 1342);
        assert!(Aut::new(g, h).is_ok());
    }

    #[test]
    fn new_rejects_size_mismatch() {
        assert!(Aut::new(Perm::identity(4), Perm::identity(5)).is_err());
    }

    #[test]
    fn identity_acts_trivially() {
        let a = Aut::identity(5);
        assert!(a.is_identity());
        let p = Perm::from_digits(5, 35214);
        assert_eq!(a.apply(&p), p);
        assert_eq!(a.map_dimension(3), 3);
    }

    #[test]
    fn apply_preserves_adjacency_and_maps_dimension() {
        let n = 5;
        for g_rank in [0u64, 17, 103] {
            for h_rank in 0..Aut::stab_count(n) {
                let a = Aut::from_ranks(n, g_rank, h_rank);
                for p in perms(n).step_by(7) {
                    for d in 1..n {
                        let q = p.star_move(d);
                        let pa = a.apply(&p);
                        let qa = a.apply(&q);
                        assert_eq!(
                            pa.edge_dimension_to(&qa),
                            Some(a.map_dimension(d)),
                            "aut ({g_rank},{h_rank}) broke edge p={p} d={d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn inverse_round_trips_vertices() {
        let n = 6;
        let a = Aut::from_ranks(n, 12345, 67);
        let inv = a.inverse();
        for p in perms(n).step_by(101) {
            assert_eq!(inv.apply(&a.apply(&p)), p);
            assert_eq!(a.apply(&inv.apply(&p)), p);
        }
        assert!(a.compose(&inv).is_identity());
        assert!(inv.compose(&a).is_identity());
    }

    #[test]
    fn compose_matches_sequential_application() {
        let n = 5;
        let a = Aut::from_ranks(n, 31, 4);
        let b = Aut::from_ranks(n, 77, 19);
        let ab = a.compose(&b);
        for p in perms(n).step_by(13) {
            assert_eq!(ab.apply(&p), a.apply(&b.apply(&p)));
        }
    }

    #[test]
    fn stab_unrank_enumerates_the_stabilizer_without_repeats() {
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for r in 0..Aut::stab_count(n) {
            let h = Aut::stab_unrank(n, r);
            assert_eq!(h.get(0), 1, "stab element must fix symbol 1");
            assert!(seen.insert(h), "duplicate stab element at rank {r}");
        }
        assert_eq!(seen.len() as u64, factorial(n - 1));
    }

    #[test]
    fn from_ranks_reduces_out_of_range_ranks() {
        let n = 4;
        let a = Aut::from_ranks(n, factorial(n), factorial(n - 1));
        assert!(a.is_identity());
    }
}
