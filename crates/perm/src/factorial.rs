//! Factorial tables used by ranking, partition arithmetic and bound
//! calculators.

/// Factorials `0! ..= 20!` as `u64` (20! is the largest factorial that fits
/// in a `u64`).
pub const FACTORIALS: [u64; 21] = {
    let mut t = [1u64; 21];
    let mut i = 1;
    while i < 21 {
        t[i] = t[i - 1] * i as u64;
        i += 1;
    }
    t
};

/// `n!` for `n <= 20`.
///
/// # Panics
/// Panics if `n > 20` (the result would overflow a `u64`).
#[inline]
pub fn factorial(n: usize) -> u64 {
    FACTORIALS[n]
}

/// The falling factorial `n * (n-1) * ... * (n-k+1)` (`k` terms), i.e.
/// `n!/(n-k)!`. This is the number of `r`-vertices produced when an
/// `(i_1,...,i_k)`-partition refines `S_n` (Definition 3 of the paper).
///
/// # Panics
/// Panics if `k > n` or `n > 20`.
#[inline]
pub fn falling_factorial(n: usize, k: usize) -> u64 {
    assert!(
        k <= n && n <= 20,
        "falling_factorial({n}, {k}) out of range"
    );
    FACTORIALS[n] / FACTORIALS[n - k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_iterative_product() {
        let mut acc = 1u64;
        for i in 0..=20usize {
            if i > 0 {
                acc *= i as u64;
            }
            assert_eq!(factorial(i), acc, "factorial({i})");
        }
    }

    #[test]
    fn falling_factorial_basics() {
        assert_eq!(falling_factorial(5, 0), 1);
        assert_eq!(falling_factorial(5, 1), 5);
        assert_eq!(falling_factorial(5, 2), 20);
        assert_eq!(falling_factorial(5, 5), 120);
        // Number of 4-vertices in S_7: 7!/4! = 210.
        assert_eq!(falling_factorial(7, 3), 210);
    }

    #[test]
    #[should_panic]
    fn falling_factorial_rejects_k_above_n() {
        let _ = falling_factorial(3, 4);
    }
}
