//! Cycle structure of a permutation, as used by the exact star-graph
//! distance formula of Akers and Krishnamurthy (1989).
//!
//! Sorting a vertex `p` of `S_n` to the identity by star moves is the
//! "repeatedly swap the first symbol home" process, and the minimum number
//! of moves depends only on the cycle structure of `p`. With `t` the total
//! number of symbols on nontrivial cycles and `c` the number of nontrivial
//! cycles:
//!
//! ```text
//! d(p, id) = t + c       if position 0 is a fixed point of p,
//! d(p, id) = t + c - 2   if position 0 lies on a nontrivial cycle
//! ```
//!
//! (a cycle through the pivot is entered and exited for free). The formula
//! is cross-validated against BFS for small `n` in `star-graph`'s tests.

use crate::{Perm, MAX_N};

/// Cycle decomposition summary of a permutation, relative to the identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStructure {
    /// Number of symbols that are not at their home position.
    pub displaced: usize,
    /// Number of cycles of length >= 2 in the decomposition.
    pub nontrivial_cycles: usize,
    /// Whether position 0 lies on a cycle of length >= 2.
    pub zero_on_nontrivial_cycle: bool,
    /// Lengths of all nontrivial cycles (unordered).
    pub cycle_lengths: Vec<usize>,
}

impl CycleStructure {
    /// Computes the cycle structure of `p` (as a map `position -> symbol`,
    /// with home position of symbol `s` being `s - 1`).
    pub fn of(p: &Perm) -> Self {
        let n = p.n();
        let mut seen = [false; MAX_N];
        let mut displaced = 0usize;
        let mut nontrivial = 0usize;
        let mut zero_on = false;
        let mut lengths = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut contains_zero = false;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                if i == 0 {
                    contains_zero = true;
                }
                i = (p.get(i) - 1) as usize;
                len += 1;
            }
            if len >= 2 {
                nontrivial += 1;
                displaced += len;
                lengths.push(len);
                if contains_zero {
                    zero_on = true;
                }
            }
        }
        CycleStructure {
            displaced,
            nontrivial_cycles: nontrivial,
            zero_on_nontrivial_cycle: zero_on,
            cycle_lengths: lengths,
        }
    }

    /// Exact star-graph distance from the permutation to the identity
    /// (Akers–Krishnamurthy): with `t` = displaced symbols and `c` =
    /// nontrivial cycles,
    ///
    /// * `d = t + c`     if position 0 holds its own symbol (symbol 1), and
    /// * `d = t + c - 2` otherwise (the cycle through position 0 is entered
    ///   for free and exited for free).
    pub fn star_distance_to_identity(&self) -> usize {
        if self.displaced == 0 {
            return 0;
        }
        if self.zero_on_nontrivial_cycle {
            self.displaced + self.nontrivial_cycles - 2
        } else {
            self.displaced + self.nontrivial_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_no_cycles() {
        let c = CycleStructure::of(&Perm::identity(6));
        assert_eq!(c.displaced, 0);
        assert_eq!(c.nontrivial_cycles, 0);
        assert!(!c.zero_on_nontrivial_cycle);
        assert_eq!(c.star_distance_to_identity(), 0);
    }

    #[test]
    fn single_transposition_with_zero() {
        // 2134: one 2-cycle through position 0 -> distance 2 + 1 - 2 = 1.
        let c = CycleStructure::of(&Perm::from_digits(4, 2134));
        assert_eq!(c.displaced, 2);
        assert_eq!(c.nontrivial_cycles, 1);
        assert!(c.zero_on_nontrivial_cycle);
        assert_eq!(c.star_distance_to_identity(), 1);
    }

    #[test]
    fn single_transposition_without_zero() {
        // 1324: one 2-cycle avoiding position 0 -> distance 2 + 1 = 3
        // (1324 -> 3124 -> 2134 -> 1234).
        let c = CycleStructure::of(&Perm::from_digits(4, 1324));
        assert_eq!(c.displaced, 2);
        assert_eq!(c.nontrivial_cycles, 1);
        assert!(!c.zero_on_nontrivial_cycle);
        assert_eq!(c.star_distance_to_identity(), 3);
    }

    #[test]
    fn three_cycle_through_zero() {
        // 2314: positions 0->1->2->0 form a 3-cycle; d = 3 + 1 - 2 = 2.
        let p = Perm::from_digits(4, 2314);
        let c = CycleStructure::of(&p);
        assert_eq!(c.displaced, 3);
        assert_eq!(c.nontrivial_cycles, 1);
        assert!(c.zero_on_nontrivial_cycle);
        assert_eq!(c.star_distance_to_identity(), 2);
    }

    #[test]
    fn cycle_lengths_recorded() {
        // 21435: two 2-cycles.
        let c = CycleStructure::of(&Perm::from_digits(5, 21435));
        let mut ls = c.cycle_lengths.clone();
        ls.sort_unstable();
        assert_eq!(ls, vec![2, 2]);
        // One through 0 (free entry), one not: d = 4 + 2 - 2 = 4.
        assert_eq!(c.star_distance_to_identity(), 4);
    }
}
