//! Iteration over all permutations of `1..=n`.

use crate::{factorial, Perm, MAX_N};

/// Iterates over every permutation of `1..=n` in lexicographic (rank)
/// order. The iterator is `ExactSizeIterator` with length `n!`.
///
/// Generation is incremental (Knuth's next-permutation), not per-item
/// unranking, so a full sweep of `S_n` costs O(n!) amortized swaps.
#[derive(Debug, Clone)]
pub struct PermIter {
    current: Option<Perm>,
    remaining: u64,
}

impl PermIter {
    /// All permutations of `1..=n` starting from the identity.
    ///
    /// # Panics
    /// Panics if `n` is outside `1..=MAX_N`.
    pub fn new(n: usize) -> Self {
        assert!((1..=MAX_N).contains(&n), "PermIter size {n} out of range");
        PermIter {
            current: Some(Perm::identity(n)),
            remaining: factorial(n),
        }
    }
}

/// Advances `data[..n]` to its lexicographic successor; returns `false` if
/// it was the last permutation.
fn next_permutation(data: &mut [u8]) -> bool {
    let n = data.len();
    if n < 2 {
        return false;
    }
    // Longest non-increasing suffix.
    let mut i = n - 1;
    while i > 0 && data[i - 1] >= data[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    // Rightmost element greater than the pivot data[i-1].
    let mut j = n - 1;
    while data[j] <= data[i - 1] {
        j -= 1;
    }
    data.swap(i - 1, j);
    data[i..].reverse();
    true
}

impl Iterator for PermIter {
    type Item = Perm;

    fn next(&mut self) -> Option<Perm> {
        let cur = self.current?;
        self.remaining -= 1;
        let mut buf = [0u8; MAX_N];
        let n = cur.n();
        buf[..n].copy_from_slice(cur.as_slice());
        self.current = if next_permutation(&mut buf[..n]) {
            Some(Perm::from_slice(&buf[..n]).expect("successor is a permutation"))
        } else {
            None
        };
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining as usize;
        (r, Some(r))
    }
}

impl ExactSizeIterator for PermIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_n_factorial_distinct_perms_in_rank_order() {
        let all: Vec<Perm> = PermIter::new(5).collect();
        assert_eq!(all.len(), 120);
        for (expected_rank, p) in all.iter().enumerate() {
            assert_eq!(p.rank() as usize, expected_rank);
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = PermIter::new(4);
        assert_eq!(it.len(), 24);
        it.next();
        it.next();
        assert_eq!(it.len(), 22);
    }

    #[test]
    fn n_equals_one() {
        let all: Vec<Perm> = PermIter::new(1).collect();
        assert_eq!(all, vec![Perm::identity(1)]);
    }
}
