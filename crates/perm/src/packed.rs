//! Nibble-packed permutations: a whole [`Perm`] in one `u64`.
//!
//! A permutation of `1..=n` with `n <= PACKED_MAX_N` fits in `n` nibbles —
//! position `i` occupies bits `4i..4i+4`, holding the symbol (`1..=15`)
//! stored there, with unused high nibbles zero. For the workspace's
//! `n <= 12` that is a 8-byte value instead of the 13-byte (padded to 16)
//! [`Perm`], and the star-graph primitives become straight-line bit
//! arithmetic on one register:
//!
//! * [`PackedPerm::star_move`] is two shifts, two masked ORs;
//! * [`PackedPerm::first`] is a single mask;
//! * [`PackedPerm::is_adjacent`] is one XOR plus nibble inspection — no
//!   per-position loop over byte slices.
//!
//! The hot expansion core (`star-ring`'s flat-arena splice) manipulates
//! block templates and seam endpoints in this representation; conversion
//! to and from [`Perm`] is lossless and verified by property tests
//! (`crates/perm/tests/packed.rs`).

use crate::{Parity, Perm, PermError};

/// Maximum size a permutation may have and still pack into nibbles:
/// symbols `1..=15` fit a nibble, and 16 nibbles fill the `u64`. (The
/// workspace's [`crate::MAX_N`] is lower; the representation has slack.)
pub const PACKED_MAX_N: usize = 15;

/// A permutation of `1..=n` (`n <= PACKED_MAX_N`) packed 4 bits per
/// position into a `u64`.
///
/// Unused trailing nibbles are zero, so derived `Eq`/`Hash`/`Ord` agree
/// with [`Perm`]'s for equal sizes. The size `n` is carried alongside the
/// bits; two packed perms of different sizes are never equal because a
/// real symbol nibble is never zero.
///
/// # Examples
///
/// ```
/// use star_perm::{packed::PackedPerm, Perm};
///
/// let p = Perm::from_digits(5, 21345);
/// let q = PackedPerm::from_perm(&p);
/// assert_eq!(q.first(), 2);
/// assert_eq!(q.star_move(3).to_perm(), p.star_move(3));
/// assert_eq!(q.to_perm(), p);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedPerm {
    n: u8,
    bits: u64,
}

/// Mask for the nibble at position `pos`.
#[inline(always)]
const fn nib_mask(pos: usize) -> u64 {
    0xF << (4 * pos)
}

impl PackedPerm {
    /// Packs a [`Perm`].
    ///
    /// # Panics
    /// Panics if `p.n() > PACKED_MAX_N` (unreachable while
    /// `crate::MAX_N <= PACKED_MAX_N`).
    #[inline]
    pub fn from_perm(p: &Perm) -> Self {
        let n = p.n();
        assert!(n <= PACKED_MAX_N, "size {n} does not pack into nibbles");
        let mut bits = 0u64;
        for (i, &s) in p.as_slice().iter().enumerate() {
            bits |= (s as u64) << (4 * i);
        }
        PackedPerm { n: n as u8, bits }
    }

    /// Unpacks back to a [`Perm`] (lossless inverse of
    /// [`PackedPerm::from_perm`]).
    #[inline]
    pub fn to_perm(&self) -> Perm {
        let n = self.n as usize;
        let mut buf = [0u8; PACKED_MAX_N];
        let mut bits = self.bits;
        for slot in buf.iter_mut().take(n) {
            *slot = (bits & 0xF) as u8;
            bits >>= 4;
        }
        Perm::from_slice(&buf[..n]).expect("packed bits hold a permutation")
    }

    /// Reassembles from raw parts, validating that `bits` encodes a
    /// permutation of `1..=n` in the low `n` nibbles with zero above.
    pub fn from_raw(n: usize, bits: u64) -> Result<Self, PermError> {
        if !(1..=PACKED_MAX_N).contains(&n) {
            return Err(PermError::SizeOutOfRange { n });
        }
        if n < 16 && (bits >> (4 * n)) != 0 {
            return Err(PermError::NotAPermutation);
        }
        let mut seen = 0u16;
        let mut b = bits;
        for _ in 0..n {
            let s = (b & 0xF) as usize;
            if s == 0 || s > n || seen >> s & 1 == 1 {
                return Err(PermError::NotAPermutation);
            }
            seen |= 1 << s;
            b >>= 4;
        }
        Ok(PackedPerm { n: n as u8, bits })
    }

    /// The raw nibble-packed bits (position `i` in bits `4i..4i+4`).
    #[inline(always)]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The permutation size `n`.
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// The symbol at `pos` (0-based).
    ///
    /// # Panics
    /// Panics (debug builds) if `pos >= n`.
    #[inline(always)]
    pub fn get(&self, pos: usize) -> u8 {
        debug_assert!(pos < self.n as usize);
        ((self.bits >> (4 * pos)) & 0xF) as u8
    }

    /// The symbol at position 0 — the paper's "leftmost number".
    #[inline(always)]
    pub fn first(&self) -> u8 {
        (self.bits & 0xF) as u8
    }

    /// A copy with the symbols at positions `i` and `j` exchanged
    /// (mirrors [`Perm::swapped`]; a star move when one position is 0).
    #[inline(always)]
    pub fn swapped(&self, i: usize, j: usize) -> PackedPerm {
        debug_assert!(i < self.n as usize && j < self.n as usize);
        let a = (self.bits >> (4 * i)) & 0xF;
        let b = (self.bits >> (4 * j)) & 0xF;
        let bits = (self.bits & !(nib_mask(i) | nib_mask(j))) | (b << (4 * i)) | (a << (4 * j));
        PackedPerm { n: self.n, bits }
    }

    /// The neighbor along star dimension `d` (swap positions 0 and `d`).
    ///
    /// # Panics
    /// Panics (debug builds) if `d == 0` or `d >= n`.
    #[inline(always)]
    pub fn star_move(&self, d: usize) -> PackedPerm {
        debug_assert!(d >= 1 && d < self.n as usize, "invalid star dimension {d}");
        self.swapped(0, d)
    }

    /// Returns `d` with `self.star_move(d) == other`, or `None` when not
    /// adjacent in `S_n`. One XOR finds the differing positions.
    pub fn edge_dimension_to(&self, other: &PackedPerm) -> Option<usize> {
        if self.n != other.n {
            return None;
        }
        let mut diff = self.bits ^ other.bits;
        if diff == 0 || diff & 0xF == 0 {
            return None; // equal, or position 0 agrees
        }
        diff &= !0xF;
        if diff == 0 {
            return None; // only position 0 differs: not a permutation pair
        }
        let d = (diff.trailing_zeros() / 4) as usize;
        // All remaining difference must sit in nibble d, and the two
        // symbols must be exchanged.
        if diff & !nib_mask(d) != 0 {
            return None;
        }
        (self.first() == other.get(d) && self.get(d) == other.first()).then_some(d)
    }

    /// `true` iff the two packed permutations are adjacent in `S_n`.
    #[inline]
    pub fn is_adjacent(&self, other: &PackedPerm) -> bool {
        self.edge_dimension_to(other).is_some()
    }

    /// The permutation's parity (sign) — which partite set of `S_n` the
    /// vertex lies in. Cycle walk over nibbles, O(n) with no memory
    /// traffic beyond the register.
    pub fn parity(&self) -> Parity {
        let n = self.n as usize;
        let mut seen = 0u16;
        let mut transpositions = 0usize;
        for start in 0..n {
            if seen >> start & 1 == 1 {
                continue;
            }
            let mut i = start;
            let mut len = 0usize;
            while seen >> i & 1 == 0 {
                seen |= 1 << i;
                i = (((self.bits >> (4 * i)) & 0xF) - 1) as usize;
                len += 1;
            }
            transpositions += len - 1;
        }
        Parity::from_transposition_count(transpositions)
    }
}

impl From<Perm> for PackedPerm {
    #[inline]
    fn from(p: Perm) -> Self {
        PackedPerm::from_perm(&p)
    }
}

impl From<PackedPerm> for Perm {
    #[inline]
    fn from(p: PackedPerm) -> Self {
        p.to_perm()
    }
}

impl core::fmt::Display for PackedPerm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_perm())
    }
}

impl core::fmt::Debug for PackedPerm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorial;

    #[test]
    fn round_trip_exhaustive_small() {
        for n in 1..=5usize {
            for rank in 0..factorial(n) as u32 {
                let p = Perm::unrank(n, rank).unwrap();
                let q = PackedPerm::from_perm(&p);
                assert_eq!(q.to_perm(), p);
                assert_eq!(q.n(), n);
                for pos in 0..n {
                    assert_eq!(q.get(pos), p.get(pos));
                }
            }
        }
    }

    #[test]
    fn from_raw_validates() {
        let p = PackedPerm::from_perm(&Perm::identity(4));
        assert_eq!(PackedPerm::from_raw(4, p.bits()).unwrap(), p);
        // Zero nibble inside.
        assert!(PackedPerm::from_raw(4, 0x4301).is_err());
        // Duplicate symbol.
        assert!(PackedPerm::from_raw(4, 0x4311).is_err());
        // Symbol out of range.
        assert!(PackedPerm::from_raw(4, 0x5321).is_err());
        // Garbage above the top nibble.
        assert!(PackedPerm::from_raw(4, 0x1_4321).is_err());
        assert!(PackedPerm::from_raw(0, 0).is_err());
    }

    #[test]
    fn star_move_matches_perm() {
        let p = Perm::from_digits(6, 316254);
        let q = PackedPerm::from_perm(&p);
        for d in 1..6 {
            assert_eq!(q.star_move(d).to_perm(), p.star_move(d), "d={d}");
            assert_eq!(q.star_move(d).star_move(d), q);
        }
    }

    #[test]
    fn adjacency_matches_perm_exhaustive_s4() {
        for a in 0..24u32 {
            for b in 0..24u32 {
                let pa = Perm::unrank(4, a).unwrap();
                let pb = Perm::unrank(4, b).unwrap();
                let qa = PackedPerm::from_perm(&pa);
                let qb = PackedPerm::from_perm(&pb);
                assert_eq!(
                    qa.edge_dimension_to(&qb),
                    pa.edge_dimension_to(&pb),
                    "{pa} vs {pb}"
                );
                assert_eq!(qa.is_adjacent(&qb), pa.is_adjacent(&pb));
            }
        }
    }

    #[test]
    fn parity_matches_perm() {
        for n in [3usize, 5, 7] {
            for rank in (0..factorial(n) as u32).step_by(17) {
                let p = Perm::unrank(n, rank).unwrap();
                assert_eq!(PackedPerm::from_perm(&p).parity(), p.parity(), "{p}");
            }
        }
    }

    #[test]
    fn different_sizes_never_equal() {
        let a = PackedPerm::from_perm(&Perm::identity(3));
        let b = PackedPerm::from_perm(&Perm::identity(4));
        assert_ne!(a, b);
        assert!(!a.is_adjacent(&b));
    }

    #[test]
    fn max_packable_size_round_trips() {
        let syms: Vec<u8> = (1..=PACKED_MAX_N as u8).rev().collect();
        let p = Perm::from_slice(&syms[PACKED_MAX_N - crate::MAX_N..]).unwrap();
        let q = PackedPerm::from_perm(&p);
        assert_eq!(q.to_perm(), p);
    }
}
