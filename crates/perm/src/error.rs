//! Error type for permutation construction and ranking.

use core::fmt;

/// Errors raised when constructing or converting permutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermError {
    /// The requested size is outside `1..=MAX_N`.
    SizeOutOfRange {
        /// The size that was requested.
        n: usize,
    },
    /// The input slice is not a permutation of `1..=n` (wrong symbols,
    /// duplicates, or out-of-range entries).
    NotAPermutation,
    /// A rank was passed that is `>= n!` for the given `n`.
    RankOutOfRange {
        /// The offending rank.
        rank: u64,
        /// The permutation size.
        n: usize,
    },
    /// A position index was `>= n`.
    PositionOutOfRange {
        /// The offending position.
        pos: usize,
        /// The permutation size.
        n: usize,
    },
    /// A symbol outside `1..=n` was used.
    SymbolOutOfRange {
        /// The offending symbol.
        symbol: u8,
        /// The permutation size.
        n: usize,
    },
    /// Two permutations of different sizes were combined.
    SizeMismatch {
        /// Size of the left operand.
        left: usize,
        /// Size of the right operand.
        right: usize,
    },
    /// A `(g, h)` pair whose `h` does not fix symbol 1 was offered as a
    /// star-graph automorphism.
    NotAnAutomorphism,
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermError::SizeOutOfRange { n } => {
                write!(f, "permutation size {n} is outside 1..=MAX_N")
            }
            PermError::NotAPermutation => write!(f, "input is not a permutation of 1..=n"),
            PermError::RankOutOfRange { rank, n } => {
                write!(f, "rank {rank} is out of range for n = {n} (must be < n!)")
            }
            PermError::PositionOutOfRange { pos, n } => {
                write!(f, "position {pos} is out of range for n = {n}")
            }
            PermError::SymbolOutOfRange { symbol, n } => {
                write!(f, "symbol {symbol} is out of range for n = {n}")
            }
            PermError::SizeMismatch { left, right } => {
                write!(f, "permutation sizes differ: {left} vs {right}")
            }
            PermError::NotAnAutomorphism => {
                write!(f, "right part h of a star automorphism must fix symbol 1")
            }
        }
    }
}

impl std::error::Error for PermError {}
