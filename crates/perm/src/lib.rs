//! # star-perm
//!
//! Permutation substrate for star-graph algorithms.
//!
//! The vertices of the n-dimensional star graph `S_n` are the `n!`
//! permutations of the symbols `1..=n`. Every algorithm in this workspace
//! therefore bottoms out in operations on small, dense permutations:
//! star moves (swapping the first symbol with the symbol at position `d`),
//! parity (the bipartition of `S_n`), cycle structure (exact star-graph
//! distance), and Lehmer ranking (compact `u32` vertex ids).
//!
//! This crate provides exactly those operations with no heap allocation on
//! the hot paths:
//!
//! - [`Perm`] — an inline permutation of up to [`MAX_N`] symbols.
//! - [`Perm::rank`] / [`Perm::unrank`] — Lehmer-code ranking, giving a
//!   bijection between permutations of `n` symbols and `0..n!`.
//! - [`Parity`] — even/odd sign, the two partite sets of `S_n`.
//! - [`cycles::CycleStructure`] — the cycle decomposition used by the
//!   Akers–Krishnamurthy distance formula.
//! - [`iter::PermIter`] — iteration over all permutations of `n` symbols in
//!   rank order.
//! - [`packed::PackedPerm`] — the same permutation nibble-packed into one
//!   `u64`, for register-resident hot loops (flat-arena ring expansion).
//!
//! Positions are **0-based** throughout the workspace; the paper uses
//! 1-based positions, so the paper's "dimension `i`" edge (`2 <= i <= n`)
//! is our dimension `d = i - 1` (`1 <= d <= n-1`).

mod error;
mod factorial;
mod parity;
mod perm;

pub mod aut;
pub mod cycles;
pub mod iter;
pub mod packed;

pub use aut::Aut;
pub use error::PermError;
pub use factorial::{factorial, falling_factorial, FACTORIALS};
pub use parity::Parity;
pub use perm::{Perm, MAX_N};
