//! Permutation parity — the bipartition of the star graph.
//!
//! `S_n` is bipartite: every star move is a transposition, so it flips the
//! sign of the permutation, and the two partite sets are exactly the even
//! and odd permutations (each of size `n!/2`). The paper's worst-case
//! optimality argument (`n! - 2|F_v|` is maximal when all faults share a
//! partite set) is a direct consequence.

use core::fmt;
use core::ops::Not;

/// The sign of a permutation; equivalently, which partite set of `S_n` a
/// vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Parity {
    /// Even permutations (the identity's side).
    Even,
    /// Odd permutations.
    Odd,
}

impl Parity {
    /// Parity from the number of transpositions (or inversions) mod 2.
    #[inline]
    pub fn from_transposition_count(count: usize) -> Self {
        if count.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// `true` for [`Parity::Even`].
    #[inline]
    pub fn is_even(self) -> bool {
        matches!(self, Parity::Even)
    }

    /// The parity obtained after applying one more transposition (one star
    /// move).
    #[inline]
    pub fn flipped(self) -> Self {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }

    /// 0 for even, 1 for odd — handy as an array index.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Parity::Even => 0,
            Parity::Odd => 1,
        }
    }
}

impl Not for Parity {
    type Output = Parity;

    #[inline]
    fn not(self) -> Parity {
        self.flipped()
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parity::Even => write!(f, "even"),
            Parity::Odd => write!(f, "odd"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        assert_eq!(Parity::Even.flipped().flipped(), Parity::Even);
        assert_eq!(Parity::Odd.flipped(), Parity::Even);
        assert_eq!(!Parity::Even, Parity::Odd);
    }

    #[test]
    fn from_count() {
        assert_eq!(Parity::from_transposition_count(0), Parity::Even);
        assert_eq!(Parity::from_transposition_count(7), Parity::Odd);
    }

    #[test]
    fn indexing() {
        assert_eq!(Parity::Even.index(), 0);
        assert_eq!(Parity::Odd.index(), 1);
    }
}
