//! The [`Perm`] type: a compact permutation of `1..=n`, `n <= MAX_N`.

use core::fmt;

use crate::{factorial, Parity, PermError};

/// Maximum supported permutation size.
///
/// `12! = 479_001_600 < 2^32`, so every vertex of `S_n` for `n <= MAX_N`
/// has a `u32` Lehmer rank; rings over `S_n` are stored as `Vec<u32>`.
pub const MAX_N: usize = 12;

/// A permutation of the symbols `1..=n` stored inline (no heap).
///
/// `Perm` is the vertex type of the star graph `S_n`: position 0 holds the
/// "first" symbol of the paper, and the star move along dimension `d`
/// (`1 <= d <= n-1`) swaps positions `0` and `d`.
///
/// # Examples
///
/// ```
/// use star_perm::Perm;
///
/// let p = Perm::from_digits(4, 1234);
/// let q = p.star_move(2); // swap positions 0 and 2
/// assert_eq!(q.to_string(), "3214");
/// assert!(p.is_adjacent(&q));
/// assert_eq!(Perm::unrank(4, p.rank()).unwrap(), p);
/// ```
///
/// Unused trailing slots are zeroed so that derived `Eq`/`Hash`/`Ord` are
/// well-defined across values of different sizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Perm {
    n: u8,
    data: [u8; MAX_N],
}

impl Perm {
    /// The identity permutation `1 2 3 ... n`.
    ///
    /// # Panics
    /// Panics if `n` is outside `1..=MAX_N`.
    pub fn identity(n: usize) -> Self {
        assert!((1..=MAX_N).contains(&n), "Perm size {n} out of range");
        let mut data = [0u8; MAX_N];
        for (i, slot) in data.iter_mut().enumerate().take(n) {
            *slot = (i + 1) as u8;
        }
        Perm { n: n as u8, data }
    }

    /// Builds a permutation from a slice of symbols, validating that it is a
    /// permutation of `1..=len`.
    pub fn from_slice(symbols: &[u8]) -> Result<Self, PermError> {
        let n = symbols.len();
        if !(1..=MAX_N).contains(&n) {
            return Err(PermError::SizeOutOfRange { n });
        }
        let mut seen = [false; MAX_N + 1];
        let mut data = [0u8; MAX_N];
        for (i, &s) in symbols.iter().enumerate() {
            if s == 0 || s as usize > n || seen[s as usize] {
                return Err(PermError::NotAPermutation);
            }
            seen[s as usize] = true;
            data[i] = s;
        }
        Ok(Perm { n: n as u8, data })
    }

    /// Builds a permutation from a slice the caller has already proven
    /// valid (e.g. produced by substituting a permutation of free symbols
    /// into a pattern template). Skips the duplicate/range validation of
    /// [`Perm::from_slice`] in release builds — the hot block-lift loop
    /// constructs hundreds of thousands of vertices per embed and the
    /// check is pure overhead there — but still debug-asserts it, so test
    /// builds catch a bad caller immediately.
    ///
    /// # Panics
    /// Panics if `symbols.len()` is outside `1..=MAX_N`; debug builds also
    /// panic if the slice is not a permutation of `1..=len`.
    #[inline]
    pub fn from_slice_trusted(symbols: &[u8]) -> Self {
        let n = symbols.len();
        assert!((1..=MAX_N).contains(&n), "Perm size {n} out of range");
        debug_assert!(
            Perm::from_slice(symbols).is_ok(),
            "from_slice_trusted given a non-permutation: {symbols:?}"
        );
        let mut data = [0u8; MAX_N];
        data[..n].copy_from_slice(symbols);
        Perm { n: n as u8, data }
    }

    /// Convenience constructor from digits, e.g. `Perm::from_digits(4, 2134)`
    /// builds the permutation `2 1 3 4`. Only usable for `n <= 9`.
    ///
    /// # Panics
    /// Panics if the digits do not form a permutation of `1..=n`.
    pub fn from_digits(n: usize, digits: u64) -> Self {
        assert!(n <= 9, "from_digits only supports n <= 9");
        let mut buf = [0u8; MAX_N];
        let mut v = digits;
        for i in (0..n).rev() {
            buf[i] = (v % 10) as u8;
            v /= 10;
        }
        assert_eq!(v, 0, "digit count does not match n = {n}");
        Perm::from_slice(&buf[..n]).expect("digits must form a permutation of 1..=n")
    }

    /// The permutation size `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// The symbols as a slice of length `n`.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[..self.n as usize]
    }

    /// The symbol at `pos` (0-based).
    ///
    /// # Panics
    /// Panics (in debug builds, via slice indexing) if `pos >= n`.
    #[inline]
    pub fn get(&self, pos: usize) -> u8 {
        self.as_slice()[pos]
    }

    /// The position (0-based) holding `symbol`.
    ///
    /// # Panics
    /// Panics if `symbol` is not in `1..=n` (it is then absent).
    #[inline]
    pub fn position_of(&self, symbol: u8) -> usize {
        self.as_slice()
            .iter()
            .position(|&s| s == symbol)
            .unwrap_or_else(|| panic!("symbol {symbol} absent from permutation"))
    }

    /// The symbol at position 0 — the paper's "leftmost number".
    #[inline]
    pub fn first(&self) -> u8 {
        self.data[0]
    }

    /// The neighbor of this vertex along dimension `d` in `S_n`: the
    /// permutation with positions `0` and `d` swapped.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d >= n` — dimension 0 is the pivot itself and
    /// not a valid edge dimension.
    #[inline]
    pub fn star_move(&self, d: usize) -> Perm {
        assert!(d >= 1 && d < self.n as usize, "invalid star dimension {d}");
        let mut out = *self;
        out.data.swap(0, d);
        out
    }

    /// In-place variant of [`Perm::star_move`].
    #[inline]
    pub fn star_move_in_place(&mut self, d: usize) {
        assert!(d >= 1 && d < self.n as usize, "invalid star dimension {d}");
        self.data.swap(0, d);
    }

    /// Iterator over the `n-1` neighbors of this vertex in `S_n`, in
    /// dimension order `1..n`.
    pub fn neighbors(&self) -> impl Iterator<Item = Perm> + '_ {
        (1..self.n as usize).map(move |d| self.star_move(d))
    }

    /// Returns the dimension `d` such that `self.star_move(d) == other`, or
    /// `None` if the two permutations are not adjacent in `S_n`.
    pub fn edge_dimension_to(&self, other: &Perm) -> Option<usize> {
        if self.n != other.n {
            return None;
        }
        let n = self.n as usize;
        // Adjacent iff they differ exactly at positions {0, d} and the
        // symbols there are swapped.
        let mut diff = [0usize; 2];
        let mut count = 0;
        for i in 0..n {
            if self.data[i] != other.data[i] {
                if count == 2 {
                    return None;
                }
                diff[count] = i;
                count += 1;
            }
        }
        if count != 2 || diff[0] != 0 {
            return None;
        }
        let d = diff[1];
        if self.data[0] == other.data[d] && self.data[d] == other.data[0] {
            Some(d)
        } else {
            None
        }
    }

    /// `true` iff the two permutations are adjacent in `S_n`.
    #[inline]
    pub fn is_adjacent(&self, other: &Perm) -> bool {
        self.edge_dimension_to(other).is_some()
    }

    /// The parity (sign) of the permutation: which partite set of `S_n` the
    /// vertex belongs to. Computed from the cycle decomposition in O(n).
    pub fn parity(&self) -> Parity {
        let n = self.n as usize;
        let mut seen = [false; MAX_N];
        let mut transpositions = 0usize;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            // Walk the cycle containing `start`; a cycle of length L
            // contributes L-1 transpositions.
            let mut len = 0usize;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = (self.data[i] - 1) as usize;
                len += 1;
            }
            transpositions += len - 1;
        }
        Parity::from_transposition_count(transpositions)
    }

    /// The group-inverse permutation `p^{-1}` (with `p` viewed as the map
    /// `position -> symbol`, the inverse maps `symbol -> position + 1`).
    pub fn inverse(&self) -> Perm {
        let n = self.n as usize;
        let mut data = [0u8; MAX_N];
        for i in 0..n {
            data[(self.data[i] - 1) as usize] = (i + 1) as u8;
        }
        Perm { n: self.n, data }
    }

    /// Function composition `(self ∘ other)(i) = self[other[i]]`, i.e.
    /// relabel `other`'s output through `self`.
    pub fn compose(&self, other: &Perm) -> Perm {
        assert_eq!(self.n, other.n, "composing perms of different sizes");
        let n = self.n as usize;
        let mut data = [0u8; MAX_N];
        for (slot, &o) in data.iter_mut().zip(&other.data[..n]) {
            *slot = self.data[(o - 1) as usize];
        }
        Perm { n: self.n, data }
    }

    /// The Lehmer rank of the permutation: a bijection onto `0..n!` in
    /// lexicographic order. Fits a `u32` because `n <= 12`.
    pub fn rank(&self) -> u32 {
        let n = self.n as usize;
        let mut rank = 0u64;
        for i in 0..n {
            // Count symbols to the right of i that are smaller: that is the
            // i-th digit of the Lehmer code.
            let mut smaller = 0u64;
            for j in (i + 1)..n {
                if self.data[j] < self.data[i] {
                    smaller += 1;
                }
            }
            rank += smaller * factorial(n - 1 - i);
        }
        rank as u32
    }

    /// Inverse of [`Perm::rank`]: the permutation of `1..=n` with the given
    /// lexicographic rank.
    pub fn unrank(n: usize, rank: u32) -> Result<Perm, PermError> {
        if !(1..=MAX_N).contains(&n) {
            return Err(PermError::SizeOutOfRange { n });
        }
        if (rank as u64) >= factorial(n) {
            return Err(PermError::RankOutOfRange {
                rank: rank as u64,
                n,
            });
        }
        let mut pool: [u8; MAX_N] = [0; MAX_N];
        for (i, slot) in pool.iter_mut().enumerate().take(n) {
            *slot = (i + 1) as u8;
        }
        let mut remaining = rank as u64;
        let mut data = [0u8; MAX_N];
        let mut pool_len = n;
        for (i, slot) in data.iter_mut().enumerate().take(n) {
            let f = factorial(n - 1 - i);
            let idx = (remaining / f) as usize;
            remaining %= f;
            *slot = pool[idx];
            // Remove pool[idx], preserving order.
            pool.copy_within(idx + 1..pool_len, idx);
            pool_len -= 1;
        }
        Ok(Perm { n: n as u8, data })
    }

    /// Swaps the symbols at two arbitrary positions. Not a star move unless
    /// one of the positions is 0; used by pattern machinery and tests.
    pub fn swapped(&self, i: usize, j: usize) -> Perm {
        let n = self.n as usize;
        assert!(i < n && j < n, "swap positions out of range");
        let mut out = *self;
        out.data.swap(i, j);
        out
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n <= 9 {
            for &s in self.as_slice() {
                write!(f, "{s}")?;
            }
            Ok(())
        } else {
            let mut first = true;
            for &s in self.as_slice() {
                if !first {
                    write!(f, ".")?;
                }
                write!(f, "{s}")?;
                first = false;
            }
            Ok(())
        }
    }
}

impl fmt::Debug for Perm {
    // Permutations read best as symbol strings, so Debug == Display.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl core::str::FromStr for Perm {
    type Err = PermError;

    /// Parses the [`fmt::Display`] format back: digit strings for
    /// `n <= 9` (`"3142"`), dot-separated symbols otherwise
    /// (`"10.2.3.1.4.5.6.7.8.9.11"`).
    fn from_str(text: &str) -> Result<Self, PermError> {
        let symbols: Vec<u8> = if text.contains('.') {
            text.split('.')
                .map(|t| t.parse::<u8>().map_err(|_| PermError::NotAPermutation))
                .collect::<Result<_, _>>()?
        } else {
            text.chars()
                .map(|c| {
                    c.to_digit(10)
                        .map(|d| d as u8)
                        .ok_or(PermError::NotAPermutation)
                })
                .collect::<Result<_, _>>()?
        };
        Perm::from_slice(&symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_accessors() {
        let p = Perm::identity(5);
        assert_eq!(p.n(), 5);
        assert_eq!(p.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(p.first(), 1);
        assert_eq!(p.get(3), 4);
        assert_eq!(p.position_of(4), 3);
    }

    #[test]
    fn from_slice_validates() {
        assert!(Perm::from_slice(&[2, 1, 3]).is_ok());
        assert_eq!(
            Perm::from_slice(&[1, 1, 3]),
            Err(PermError::NotAPermutation)
        );
        assert_eq!(
            Perm::from_slice(&[1, 2, 4]),
            Err(PermError::NotAPermutation)
        );
        assert_eq!(
            Perm::from_slice(&[]),
            Err(PermError::SizeOutOfRange { n: 0 })
        );
    }

    #[test]
    fn from_digits_builds_expected() {
        let p = Perm::from_digits(4, 2134);
        assert_eq!(p.as_slice(), &[2, 1, 3, 4]);
    }

    #[test]
    fn star_move_swaps_first_and_d() {
        let p = Perm::from_digits(4, 1234);
        assert_eq!(p.star_move(1).as_slice(), &[2, 1, 3, 4]);
        assert_eq!(p.star_move(3).as_slice(), &[4, 2, 3, 1]);
        // Involution: applying the same move twice returns.
        assert_eq!(p.star_move(2).star_move(2), p);
    }

    #[test]
    fn neighbors_count_and_distinct() {
        let p = Perm::identity(6);
        let ns: Vec<Perm> = p.neighbors().collect();
        assert_eq!(ns.len(), 5);
        for (i, a) in ns.iter().enumerate() {
            assert!(a.is_adjacent(&p));
            for b in &ns[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn edge_dimension_detection() {
        let p = Perm::from_digits(5, 12345);
        let q = p.star_move(4);
        assert_eq!(p.edge_dimension_to(&q), Some(4));
        assert_eq!(q.edge_dimension_to(&p), Some(4));
        // Non-adjacent: differs in a 3-cycle.
        let r = Perm::from_digits(5, 23145);
        assert_eq!(p.edge_dimension_to(&r), None);
        // Identical perms are not adjacent.
        assert_eq!(p.edge_dimension_to(&p), None);
    }

    #[test]
    fn parity_flips_on_star_moves() {
        let p = Perm::identity(7);
        assert_eq!(p.parity(), Parity::Even);
        let q = p.star_move(3);
        assert_eq!(q.parity(), Parity::Odd);
        assert_eq!(q.star_move(5).parity(), Parity::Even);
    }

    #[test]
    fn parity_matches_inversion_count() {
        for rank in 0..24u32 {
            let p = Perm::unrank(4, rank).unwrap();
            let s = p.as_slice();
            let mut inv = 0;
            for i in 0..4 {
                for j in i + 1..4 {
                    if s[i] > s[j] {
                        inv += 1;
                    }
                }
            }
            assert_eq!(p.parity(), Parity::from_transposition_count(inv), "{p}");
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Perm::from_digits(6, 316254);
        assert_eq!(p.compose(&p.inverse()), Perm::identity(6));
        assert_eq!(p.inverse().compose(&p), Perm::identity(6));
    }

    #[test]
    fn rank_unrank_roundtrip_s5() {
        for rank in 0..120u32 {
            let p = Perm::unrank(5, rank).unwrap();
            assert_eq!(p.rank(), rank);
        }
    }

    #[test]
    fn rank_is_lexicographic() {
        let mut prev = Perm::unrank(4, 0).unwrap();
        for rank in 1..24u32 {
            let cur = Perm::unrank(4, rank).unwrap();
            assert!(cur.as_slice() > prev.as_slice(), "lex order at rank {rank}");
            prev = cur;
        }
    }

    #[test]
    fn rank_extremes() {
        assert_eq!(Perm::identity(8).rank(), 0);
        let rev = Perm::from_slice(&[8, 7, 6, 5, 4, 3, 2, 1]).unwrap();
        assert_eq!(rev.rank() as u64, factorial(8) - 1);
        assert!(Perm::unrank(4, 24).is_err());
    }

    #[test]
    fn display_small_and_large() {
        assert_eq!(Perm::from_digits(4, 3142).to_string(), "3142");
        let big = Perm::identity(11);
        assert_eq!(big.to_string(), "1.2.3.4.5.6.7.8.9.10.11");
    }

    #[test]
    fn from_str_roundtrips_display() {
        for p in [
            Perm::from_digits(4, 3142),
            Perm::identity(9),
            Perm::from_slice(&[10, 2, 3, 1, 4, 5, 6, 7, 8, 9, 11]).unwrap(),
        ] {
            let parsed: Perm = p.to_string().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("31x2".parse::<Perm>().is_err());
        assert!("1123".parse::<Perm>().is_err());
        assert!("".parse::<Perm>().is_err());
        assert!("10.2".parse::<Perm>().is_err()); // not a permutation of 1..=2
    }
}
