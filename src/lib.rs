//! # star-rings
//!
//! Umbrella crate for the reproduction of *"Embed Longest Rings onto Star
//! Graphs with Vertex Faults"* (Sun-Yuan Hsieh, Gen-Huey Chen, Chin-Wen Ho;
//! ICPP 1998).
//!
//! Re-exports the workspace crates under short module names so that the
//! examples and integration tests can use a single dependency:
//!
//! - [`perm`] — permutations (vertices of `S_n`).
//! - [`graph`] — the star graph `S_n`, sub-stars, partitions, super-rings.
//! - [`fault`] — vertex/edge fault sets and generators.
//! - [`ring`] — **the paper's algorithm**: longest fault-free ring
//!   embeddings (`n! - 2|F_v|` with `|F_v| <= n-3`).
//! - [`baselines`] — prior-art comparators (Tseng et al.,
//!   Latifi–Bagherzadeh).
//! - [`verify`] — ring/path validity and optimality checkers.
//! - [`sim`] — ring-workload simulation on faulty star networks.
//! - [`obs`] — structured tracing and metrics (spans, counters,
//!   histograms) used by every layer above.
//! - [`pool`] — the shared work pool: order-preserving parallel maps and
//!   the process-wide thread-count knob ([`pool::set_threads`], surfaced
//!   as `--threads` on the CLI).
//! - [`mod@bench`] — perf baselines (`BENCH_*.json`), the regression
//!   comparator, and the vendored JSON codec ([`bench::jsonv`]).
//! - [`serve`] — the networked embedding service: TCP server with a
//!   length-prefixed JSON protocol, bounded request queue, sharded LRU
//!   result cache, and a closed-loop load generator (`star-rings serve` /
//!   `star-rings loadgen`).
//! - [`oracle`] — the symmetry-canonical embedding oracle: an
//!   `Aut(S_n)`-canonicalizer that folds fault scenarios onto orbit
//!   representatives, plus a crash-safe disk store of canonical rings
//!   (`star-rings oracle warm|stats|verify`, `serve --oracle-path`).
//!
//! ## Quickstart
//!
//! ```
//! use star_rings::fault::FaultSet;
//! use star_rings::perm::Perm;
//! use star_rings::ring::embed_longest_ring;
//! use star_rings::verify::check_ring;
//!
//! // S_6 with 3 vertex faults (the maximum n-3 allows).
//! let n = 6;
//! let faults = FaultSet::from_vertices(
//!     n,
//!     [
//!         Perm::from_digits(6, 123456),
//!         Perm::from_digits(6, 213456),
//!         Perm::from_digits(6, 321456),
//!     ],
//! )
//! .unwrap();
//!
//! let ring = embed_longest_ring(n, &faults).unwrap();
//! assert_eq!(ring.len(), 720 - 2 * 3); // n! - 2|F_v|
//! check_ring(n, ring.vertices(), &faults).unwrap();
//! ```

pub use star_baselines as baselines;
pub use star_bench as bench;
pub use star_fault as fault;
pub use star_graph as graph;
pub use star_obs as obs;
pub use star_oracle as oracle;
pub use star_perm as perm;
pub use star_pool as pool;
pub use star_ring as ring;
pub use star_serve as serve;
pub use star_sim as sim;
pub use star_verify as verify;
