//! `star-rings` — command-line front end for the library.
//!
//! ```text
//! star-rings info <n>
//! star-rings embed <n> [--random K] [--worst K] [--fault PERM]... [--seed S] [--print]
//! star-rings verify <n> <ring-file> [--fault PERM]...
//! star-rings degrade <n> [--failures K] [--seed S]
//! star-rings certify <n> [fault options] > ring.cert
//! star-rings verify-cert <cert-file>
//! star-rings dot <n> [fault options] > ring.dot
//! ```
//!
//! Rings are written/read as one permutation per line (symbols as digits
//! for `n <= 9`, dot-separated otherwise), so `embed --print > ring.txt`
//! followed by `verify ring.txt` round-trips.

use std::io::{BufRead, Write};
use std::process::ExitCode;

use star_rings::fault::{gen, FaultSet};
use star_rings::graph::{diameter, StarGraph};
use star_rings::perm::{factorial, Parity, Perm};
use star_rings::ring::embed_longest_ring;
use star_rings::sim::resilience::degrade;
use star_rings::verify::{bounds, check_ring};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("embed") => cmd_embed(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("degrade") => cmd_degrade(&args[1..]),
        Some("certify") => cmd_certify(&args[1..]),
        Some("verify-cert") => cmd_verify_cert(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("obs-overhead") => cmd_obs_overhead(&args[1..]),
        Some("oracle") => cmd_oracle(&args[1..]),
        Some("--help") | Some("-h") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            if star_rings::obs::flightrec::enabled() {
                // The failure itself becomes the final event of the
                // post-mortem record.
                star_rings::obs::flightrec::record("cli.error", msg.clone(), &[]);
                star_rings::obs::flightrec::dump_on_failure("cli.error");
            }
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "star-rings — longest fault-free rings in star graphs (Hsieh-Chen-Ho 1998)\n\
         \n\
         USAGE:\n\
         \x20 star-rings info <n>                         topology facts for S_n\n\
         \x20 star-rings embed <n> [OPTIONS]              embed a longest healthy ring\n\
         \x20     --fault <perm>     add an explicit faulty processor (repeatable)\n\
         \x20     --random <k>       add k uniform-random faults\n\
         \x20     --worst <k>        add k worst-case (same partite set) faults\n\
         \x20     --seed <s>         RNG seed for --random/--worst (default 0)\n\
         \x20     --print            write the ring, one vertex per line, to stdout\n\
         \x20     --stats            print the construction transcript (phases, levels,\n\
         \x20                        Lemma-4 oracle cache behavior)\n\
         \x20     --trace            stream construction spans, pretty-printed, to\n\
         \x20                        stderr as they close\n\
         \x20     --trace-json <f>   append construction spans to <f> as JSON lines\n\
         \x20     --profile-out <f>  write a collapsed-stack wall-clock profile of the\n\
         \x20                        embed to <f> (flamegraph.pl-compatible)\n\
         \x20     --threads <t>      worker threads for parallel block expansion\n\
         \x20                        (0 = auto; also honored by `stats`/`profile`)\n\
         \x20     --flightrec        record recent events in the flight recorder and\n\
         \x20                        dump them (flightrec.jsonl) on panic or failure\n\
         \x20     --flightrec-out <f>  dump file for --flightrec (implies it)\n\
         \x20 star-rings profile <n> [fault options] [--out <f>]\n\
         \x20                                             embed once and print per-phase\n\
         \x20                                             wall-clock attribution (stderr)\n\
         \x20                                             + collapsed stacks (stdout/<f>)\n\
         \x20 star-rings stats <n> [fault options] [--format pretty|prom|json]\n\
         \x20                     [--watch <secs> [--frames <k>]]\n\
         \x20                                             embed once, then dump the\n\
         \x20                                             process-wide star-obs metrics;\n\
         \x20                                             --watch re-embeds and reprints\n\
         \x20                                             every <secs> seconds\n\
         \x20 star-rings verify <n> <ring-file> [--fault <perm>]...\n\
         \x20                                             check a ring file against faults\n\
         \x20 star-rings degrade <n> [--failures <k>] [--seed <s>]\n\
         \x20                                             incremental-failure timeline\n\
         \x20 star-rings certify <n> [fault options]      embed + print a re-checkable\n\
         \x20                                             STARRING-CERT to stdout\n\
         \x20 star-rings verify-cert <cert-file>          re-verify a certificate\n\
         \x20 star-rings dot <n> [fault options]          Graphviz DOT of the embedded\n\
         \x20                                             ring (n <= 5 recommended)\n\
         \x20 star-rings serve [OPTIONS]                  embedding service over TCP\n\
         \x20                                             (length-prefixed JSON frames)\n\
         \x20     --addr <host:port>  listen address (default 127.0.0.1:7411; port 0\n\
         \x20                         picks a free port, printed on stdout)\n\
         \x20     --threads <t>       worker threads (0 = auto)\n\
         \x20     --queue <k>         request-queue high-water mark (default 256;\n\
         \x20                         beyond it requests are answered `overloaded`)\n\
         \x20     --cache-mb <m>      result-cache budget in MiB (default 256)\n\
         \x20     --deadline-ms <d>   default per-request deadline (requests may\n\
         \x20                         override; expired work answers\n\
         \x20                         `deadline_exceeded` without embedding)\n\
         \x20     --verify            audit every response against check_ring\n\
         \x20                         before sending (answers `verify_failed`\n\
         \x20                         instead of shipping a bad ring) and attach\n\
         \x20                         a STARRING-CERT certificate to embeds\n\
         \x20     --proto <v>         highest wire protocol to negotiate: v1 | v2\n\
         \x20                         (default v2). v2 clients get rings back as\n\
         \x20                         streamed generator-delta chunks; v1 pins\n\
         \x20                         JSON-only responses\n\
         \x20     --flightrec         record accept/reject/deadline events; flushed\n\
         \x20                         to disk on graceful shutdown (SIGINT drains)\n\
         \x20     --flightrec-out <f> dump file for --flightrec (implies it)\n\
         \x20     --slo-ms <t>        SLO watchdog: latency target per queued\n\
         \x20                         request; on sustained budget burn the server\n\
         \x20                         dumps the flight recorder with the offending\n\
         \x20                         trace_ids (implies --flightrec)\n\
         \x20     --slo-budget <b>    fraction of requests allowed over target\n\
         \x20                         over a 10s window (default 0.01)\n\
         \x20     --slo-dump <f>      dump file for SLO breaches (default: the\n\
         \x20                         flight recorder's dump path)\n\
         \x20     --oracle-path <d>   persistent oracle store directory: canonical\n\
         \x20                         lookups fall through the LRU to disk, and\n\
         \x20                         fresh embeds are persisted (write-behind)\n\
         \x20 star-rings loadgen [OPTIONS]                load generator\n\
         \x20     --addr <host:port>  server to drive (default 127.0.0.1:7411)\n\
         \x20     --conns <c>         concurrent connections (default 4)\n\
         \x20     --rps <r>           target offered rate, all connections combined\n\
         \x20                         (default 0 = unthrottled; required for the\n\
         \x20                         open-loop arrival modes)\n\
         \x20     --duration <secs>   run length (default 5)\n\
         \x20     --mix <m>           embed | cached | mixed | automorphic (default\n\
         \x20                         mixed); automorphic samples Aut(S_n) orbits\n\
         \x20                         of seeded base scenarios — literal fault\n\
         \x20                         lists almost never repeat, so cache hits\n\
         \x20                         require the oracle's canonical key\n\
         \x20     --arrivals <a>      closed | poisson | burst (default closed).\n\
         \x20                         closed measures service time and understates\n\
         \x20                         tails under queueing (coordinated omission);\n\
         \x20                         poisson/burst send on a fixed schedule and\n\
         \x20                         measure from the scheduled send time\n\
         \x20     --seed <s>          RNG seed (default 0x5eed)\n\
         \x20     --out <f>           write the BENCH_*.json summary to <f>\n\
         \x20                         (default: stdout); exits nonzero on any\n\
         \x20                         protocol error\n\
         \x20     --trace-out <f>     write one JSONL line per request (trace_id,\n\
         \x20                         scheduled send, latency, outcome, per-phase\n\
         \x20                         server timing) to <f>\n\
         \x20     --verify            request a STARRING-CERT with every embed\n\
         \x20                         and re-verify it client-side; exits\n\
         \x20                         nonzero on any certificate failure\n\
         \x20     --proto <p>         v1 | v2 | mixed (default v1). v2 asks for\n\
         \x20                         rings back as delta chunk streams and\n\
         \x20                         verifies every chunk incrementally; mixed\n\
         \x20                         coin-flips per request (closed loop only)\n\
         \x20 star-rings audit [OPTIONS]                  differential correctness gate:\n\
         \x20                                             seeded sweeps cross-checking the\n\
         \x20                                             embedder against the exhaustive\n\
         \x20                                             oracle, certificates, and the\n\
         \x20                                             Tseng/Latifi baselines, plus a\n\
         \x20                                             repair chaos soak and a wire-\n\
         \x20                                             protocol fuzz smoke; exits\n\
         \x20                                             nonzero on any mismatch\n\
         \x20     --n <max>           sweep dimensions 4..=max (default 6; max 6)\n\
         \x20     --seeds <k>         seeded scenarios per dimension (default 200)\n\
         \x20     --soak <k>          chaos-soak fault injections at n=6\n\
         \x20                         (default 200; 0 disables)\n\
         \x20     --fuzz <k>          hostile protocol frames against an\n\
         \x20                         in-process server (default 96; 0 disables)\n\
         \x20     --out <f>           write a BENCH_*.json timing summary to <f>\n\
         \x20 star-rings obs-overhead [OPTIONS]           measure the cost of tracing:\n\
         \x20                                             interleaved embeds with and\n\
         \x20                                             without flight recorder +\n\
         \x20                                             trace id; exits nonzero if\n\
         \x20                                             the median overhead exceeds\n\
         \x20                                             the bound\n\
         \x20     --n <n>             dimension to embed (default 8)\n\
         \x20     --samples <k>       sample pairs (default 15)\n\
         \x20     --max-pct <p>       failure bound on median overhead in percent\n\
         \x20                         (default 5)\n\
         \x20 star-rings oracle warm [OPTIONS]            pre-populate an oracle store\n\
         \x20                                             with canonical-frame rings for\n\
         \x20                                             seeded scenarios (shippable:\n\
         \x20                                             copy the directory to servers)\n\
         \x20     --path <d>          store directory (required)\n\
         \x20     --n <n>             max dimension to warm, 4..=<n> (default 7)\n\
         \x20     --count <k>         scenarios per dimension (default 32)\n\
         \x20     --seed <s>          scenario RNG seed (default 0)\n\
         \x20 star-rings oracle stats --path <d>          store record/segment/byte counts\n\
         \x20 star-rings oracle verify --path <d> [--limit <k>]\n\
         \x20                                             re-check stored rings against\n\
         \x20                                             check_ring at n! - 2|F_v|;\n\
         \x20                                             exits nonzero on any failure\n\
         \n\
         Permutations are written as digit strings for n <= 9 (e.g. 321456)\n\
         and dot-separated otherwise (e.g. 10.2.3.1...)."
    );
}

fn parse_n(args: &[String]) -> Result<usize, String> {
    args.first()
        .ok_or("missing <n>".to_string())?
        .parse::<usize>()
        .map_err(|_| "n must be an integer".to_string())
        .and_then(|n| {
            if (3..=12).contains(&n) {
                Ok(n)
            } else {
                Err("n must be in 3..=12".to_string())
            }
        })
}

fn parse_perm(n: usize, text: &str) -> Result<Perm, String> {
    let p: Perm = text.parse().map_err(|e| format!("`{text}`: {e}"))?;
    if p.n() != n {
        return Err(format!("`{text}` has {} symbols, expected {n}", p.n()));
    }
    Ok(p)
}

fn parse_faults(n: usize, args: &[String]) -> Result<(FaultSet, bool), String> {
    let mut faults = FaultSet::empty(n);
    let mut seed = 0u64;
    let mut random = 0usize;
    let mut worst = 0usize;
    let mut print = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fault" => {
                i += 1;
                let p = parse_perm(n, args.get(i).ok_or("--fault needs a value")?)?;
                faults.add_vertex(p).map_err(|e| e.to_string())?;
            }
            "--random" => {
                i += 1;
                random = args
                    .get(i)
                    .ok_or("--random needs a count")?
                    .parse()
                    .map_err(|_| "--random count must be an integer")?;
            }
            "--worst" => {
                i += 1;
                worst = args
                    .get(i)
                    .ok_or("--worst needs a count")?
                    .parse()
                    .map_err(|_| "--worst count must be an integer")?;
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?;
            }
            "--print" => print = true,
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if random > 0 {
        let extra = gen::random_vertex_faults(n, random, seed).map_err(|e| e.to_string())?;
        for v in extra.vertices() {
            // Skip collisions with explicit faults rather than erroring.
            let _ = faults.add_vertex(*v);
        }
    }
    if worst > 0 {
        let extra = gen::worst_case_same_partite(n, worst, Parity::Even, seed)
            .map_err(|e| e.to_string())?;
        for v in extra.vertices() {
            let _ = faults.add_vertex(*v);
        }
    }
    Ok((faults, print))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let n = parse_n(args)?;
    let g = StarGraph::new(n).map_err(|e| e.to_string())?;
    println!("S_{n} — the {n}-dimensional star graph");
    println!("  vertices            {}", g.vertex_count());
    println!("  edges               {}", g.edge_count());
    println!("  degree              {}", g.degree());
    println!("  diameter            {}", diameter(n));
    println!(
        "  bipartite           yes (equal partite sets of {})",
        g.vertex_count() / 2
    );
    println!("  fault budget (n-3)  {}", n.saturating_sub(3));
    println!(
        "  guaranteed ring     n! - 2|Fv|  (= {} at the full budget)",
        bounds::hsieh_chen_ho_length(n, n.saturating_sub(3))
    );
    Ok(())
}

/// Tracing/runtime switches shared by `embed` and `stats`, pre-scanned
/// before the fault options (which reject anything they don't know).
#[derive(Default)]
struct TraceOpts {
    stats: bool,
    trace: bool,
    trace_json: Option<String>,
    format: Option<String>,
    threads: Option<usize>,
    profile_out: Option<String>,
    flightrec: bool,
    flightrec_out: Option<String>,
    watch: Option<f64>,
    frames: Option<u64>,
}

/// Splits tracing/output switches off the argument list, returning them
/// and the remaining (fault) options.
fn parse_trace_opts(args: &[String]) -> Result<(TraceOpts, Vec<String>), String> {
    let mut opts = TraceOpts::default();
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = true,
            "--trace-json" => {
                i += 1;
                opts.trace_json =
                    Some(args.get(i).ok_or("--trace-json needs a file path")?.clone());
            }
            "--format" => {
                i += 1;
                let f = args.get(i).ok_or("--format needs a value")?.clone();
                if !matches!(f.as_str(), "pretty" | "prom" | "json") {
                    return Err(format!("--format must be pretty, prom or json, not `{f}`"));
                }
                opts.format = Some(f);
            }
            "--threads" => {
                i += 1;
                let t: usize = args
                    .get(i)
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|_| "--threads must be an integer (0 = auto)")?;
                opts.threads = Some(t);
            }
            "--profile-out" => {
                i += 1;
                opts.profile_out = Some(
                    args.get(i)
                        .ok_or("--profile-out needs a file path")?
                        .clone(),
                );
            }
            "--flightrec" => opts.flightrec = true,
            "--flightrec-out" => {
                i += 1;
                opts.flightrec = true;
                opts.flightrec_out = Some(
                    args.get(i)
                        .ok_or("--flightrec-out needs a file path")?
                        .clone(),
                );
            }
            "--watch" => {
                i += 1;
                let secs: f64 = args
                    .get(i)
                    .ok_or("--watch needs a period in seconds")?
                    .parse()
                    .map_err(|_| "--watch period must be a number of seconds")?;
                if !(0.0..=3600.0).contains(&secs) {
                    return Err("--watch period must be in 0..=3600 seconds".to_string());
                }
                opts.watch = Some(secs);
            }
            "--frames" => {
                i += 1;
                let k: u64 = args
                    .get(i)
                    .ok_or("--frames needs a count")?
                    .parse()
                    .map_err(|_| "--frames must be an integer")?;
                if k == 0 {
                    return Err("--frames must be at least 1".to_string());
                }
                opts.frames = Some(k);
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    Ok((opts, rest))
}

/// Installs the requested span sinks and turns span dispatch on, and
/// applies the worker-thread override to the shared pool.
fn enable_tracing(opts: &TraceOpts) -> Result<(), String> {
    use std::sync::Arc;
    if let Some(t) = opts.threads {
        star_rings::pool::set_threads(t);
    }
    if opts.trace {
        star_rings::obs::add_sink(Arc::new(star_rings::obs::StderrPrettySink));
    }
    if let Some(path) = &opts.trace_json {
        let sink = star_rings::obs::JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?;
        star_rings::obs::add_sink(Arc::new(sink));
    }
    if opts.trace || opts.trace_json.is_some() {
        star_rings::obs::set_trace_enabled(true);
    }
    if opts.flightrec {
        if let Some(path) = &opts.flightrec_out {
            star_rings::obs::flightrec::set_dump_path(path);
        }
        star_rings::obs::flightrec::enable();
        star_rings::obs::flightrec::install_panic_hook();
    }
    Ok(())
}

fn cmd_embed(args: &[String]) -> Result<(), String> {
    let n = parse_n(args)?;
    let (opts, rest) = parse_trace_opts(&args[1..])?;
    if opts.format.is_some() {
        return Err("--format belongs to the `stats` command".to_string());
    }
    if opts.watch.is_some() || opts.frames.is_some() {
        return Err("--watch/--frames belong to the `stats` command".to_string());
    }
    if opts.stats && opts.profile_out.is_some() {
        // Both drive the same thread-local span capture; the inner one
        // would steal the outer one's spans.
        return Err("--stats and --profile-out are mutually exclusive".to_string());
    }
    let (faults, print) = parse_faults(n, &rest)?;
    enable_tracing(&opts)?;
    let result = embed_body(n, &faults, opts.stats, print, opts.profile_out.as_deref());
    star_rings::obs::flush_sinks();
    result
}

fn embed_body(
    n: usize,
    faults: &FaultSet,
    stats: bool,
    print: bool,
    profile_out: Option<&str>,
) -> Result<(), String> {
    if stats {
        let (ring, report) =
            star_rings::ring::report::embed_with_report(n, faults).map_err(|e| e.to_string())?;
        eprintln!(
            "embedded ring of {} / {} vertices ({} faults, {} lost)",
            ring.len(),
            factorial(n),
            faults.vertex_fault_count(),
            ring.deficiency(),
        );
        eprintln!(
            "  plan      {:?} (spare {:?}) in {:.3} ms",
            report.plan_sequence,
            report.plan_spare,
            report.plan_time.as_secs_f64() * 1e3
        );
        for l in &report.levels {
            eprintln!(
                "  level     R^{} with {} super-vertices",
                l.order, l.supervertices
            );
        }
        eprintln!(
            "  hierarchy {:.3} ms",
            report.hierarchy_time.as_secs_f64() * 1e3
        );
        eprintln!(
            "  expand    {:.3} ms (oracle: {} hits, {} searches)",
            report.expand_time.as_secs_f64() * 1e3,
            report.oracle_hits,
            report.oracle_misses
        );
        eprintln!(
            "  verify    {:.3} ms",
            report.verify_time.as_secs_f64() * 1e3
        );
        if print {
            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            for v in ring.vertices() {
                writeln!(out, "{v}").map_err(|e| e.to_string())?;
            }
        }
        return Ok(());
    }
    let cap = profile_out.map(|_| star_rings::obs::capture());
    let t0 = std::time::Instant::now();
    let ring = embed_longest_ring(n, faults).map_err(|e| e.to_string())?;
    let dt = t0.elapsed();
    if let (Some(cap), Some(path)) = (cap, profile_out) {
        let profile = star_rings::obs::Profile::from_spans(&cap.finish());
        std::fs::write(path, profile.collapsed()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("collapsed-stack profile written to {path}");
    }
    eprintln!(
        "embedded ring of {} / {} vertices ({} faults, {} lost) in {:.2} ms",
        ring.len(),
        factorial(n),
        faults.vertex_fault_count(),
        ring.deficiency(),
        dt.as_secs_f64() * 1e3
    );
    if print {
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        for v in ring.vertices() {
            writeln!(out, "{v}").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `profile <n> [fault options] [--out <f>]`: one embed under span
/// capture; per-phase attribution table to stderr, collapsed stacks
/// (flamegraph.pl input) to stdout or `--out`.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let n = parse_n(args)?;
    let mut out_path: Option<String> = None;
    let mut forwarded = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--out" {
            i += 1;
            out_path = Some(args.get(i).ok_or("--out needs a file path")?.clone());
        } else {
            forwarded.push(args[i].clone());
        }
        i += 1;
    }
    let (opts, rest) = parse_trace_opts(&forwarded)?;
    if opts.stats || opts.format.is_some() || opts.profile_out.is_some() || opts.watch.is_some() {
        return Err("profile takes only fault options, --threads and --out".to_string());
    }
    let (faults, _) = parse_faults(n, &rest)?;
    enable_tracing(&opts)?;
    let cap = star_rings::obs::capture();
    let ring = embed_longest_ring(n, &faults).map_err(|e| e.to_string())?;
    let profile = star_rings::obs::Profile::from_spans(&cap.finish());
    eprintln!(
        "embedded ring of {} / {} vertices ({} faults); wall-clock by phase:",
        ring.len(),
        factorial(n),
        faults.vertex_fault_count()
    );
    eprint!("{}", profile.render());
    match out_path {
        Some(path) => {
            std::fs::write(&path, profile.collapsed()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("collapsed-stack profile written to {path}");
        }
        None => print!("{}", profile.collapsed()),
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let n = parse_n(args)?;
    let (opts, rest) = parse_trace_opts(&args[1..])?;
    if opts.watch.is_none() && opts.frames.is_some() {
        return Err("--frames requires --watch".to_string());
    }
    let (faults, _) = parse_faults(n, &rest)?;
    enable_tracing(&opts)?;
    let pretty = !matches!(opts.format.as_deref(), Some("prom") | Some("json"));
    let frames = match opts.watch {
        Some(_) => opts.frames.unwrap_or(u64::MAX),
        None => 1,
    };
    let mut frame = 0u64;
    loop {
        let (ring, report) =
            star_rings::ring::report::embed_with_report(n, &faults).map_err(|e| e.to_string())?;
        if opts.watch.is_some() && pretty {
            // Clear the screen between frames so the table repaints in
            // place (ANSI erase-display + cursor-home).
            print!("\x1b[2J\x1b[H");
        }
        eprintln!(
            "embedded ring of {} / {} vertices ({} faults; report oracle: {} hits, {} searches)",
            ring.len(),
            factorial(n),
            faults.vertex_fault_count(),
            report.oracle_hits,
            report.oracle_misses
        );
        if let Some(secs) = opts.watch {
            match opts.frames {
                Some(k) => eprintln!("[watch frame {} of {k}, every {secs}s]", frame + 1),
                None => eprintln!("[watch frame {}, every {secs}s — ^C to stop]", frame + 1),
            }
        }
        let snap = star_rings::obs::snapshot();
        match opts.format.as_deref() {
            Some("prom") => print!("{}", snap.to_prometheus()),
            Some("json") => println!("{}", snap.to_json()),
            _ => print!("{snap}"),
        }
        std::io::stdout().flush().map_err(|e| e.to_string())?;
        frame += 1;
        if frame >= frames {
            break;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(
            opts.watch.unwrap_or(0.0),
        ));
    }
    star_rings::obs::flush_sinks();
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let n = parse_n(args)?;
    let path = args.get(1).ok_or("missing <ring-file>")?;
    let (faults, _) = parse_faults(n, &args[2..])?;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut ring = Vec::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            ring.push(parse_perm(n, trimmed)?);
        }
    }
    check_ring(n, &ring, &faults).map_err(|e| format!("INVALID: {e}"))?;
    println!(
        "valid healthy ring of {} vertices in S_{n} (avoids all {} faults)",
        ring.len(),
        faults.vertex_fault_count()
    );
    Ok(())
}

fn cmd_certify(args: &[String]) -> Result<(), String> {
    let n = parse_n(args)?;
    let (faults, _) = parse_faults(n, &args[1..])?;
    let ring = embed_longest_ring(n, &faults).map_err(|e| e.to_string())?;
    let cert = star_rings::verify::certificate::certificate_for(n, &faults, ring.vertices());
    print!("{cert}");
    eprintln!(
        "certified ring of {} vertices avoiding {} faults",
        ring.len(),
        faults.vertex_fault_count()
    );
    Ok(())
}

fn cmd_verify_cert(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing <cert-file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let summary = star_rings::verify::certificate::verify_certificate(&text)
        .map_err(|e| format!("REJECTED: {e}"))?;
    println!(
        "certificate OK: ring of {} in S_{} avoiding {} faults (at paper guarantee: {})",
        summary.ring_len, summary.n, summary.fault_count, summary.at_guarantee
    );
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let n = parse_n(args)?;
    if n > 5 {
        eprintln!("warning: S_{n} has {} edges; the drawing will be dense", {
            star_rings::graph::edge_count(n)
        });
    }
    let (faults, _) = parse_faults(n, &args[1..])?;
    let ring = embed_longest_ring(n, &faults).map_err(|e| e.to_string())?;
    print!(
        "{}",
        star_rings::graph::export::ring_to_dot(n, ring.vertices(), faults.vertices())
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = star_rings::serve::ServeConfig::default();
    let mut flightrec = false;
    let mut flightrec_out: Option<String> = None;
    let mut slo_ms: Option<u64> = None;
    let mut slo_budget: Option<f64> = None;
    let mut slo_dump: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                config.addr = args.get(i).ok_or("--addr needs host:port")?.clone();
            }
            "--threads" => {
                i += 1;
                config.threads = args
                    .get(i)
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|_| "--threads must be an integer (0 = auto)")?;
            }
            "--queue" => {
                i += 1;
                config.queue_capacity = args
                    .get(i)
                    .ok_or("--queue needs a size")?
                    .parse()
                    .map_err(|_| "--queue must be an integer")?;
            }
            "--cache-mb" => {
                i += 1;
                let mb: usize = args
                    .get(i)
                    .ok_or("--cache-mb needs a size in MiB")?
                    .parse()
                    .map_err(|_| "--cache-mb must be an integer")?;
                config.cache_bytes = mb << 20;
            }
            "--deadline-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .ok_or("--deadline-ms needs a value")?
                    .parse()
                    .map_err(|_| "--deadline-ms must be an integer")?;
                config.default_deadline_ms = Some(ms);
            }
            "--verify" => config.verify_responses = true,
            "--proto" => {
                i += 1;
                config.max_proto = match args.get(i).map(String::as_str) {
                    Some("v1") => star_rings::serve::proto::PROTO_V1,
                    Some("v2") => star_rings::serve::proto::PROTO_V2,
                    _ => return Err("--proto must be v1 or v2".to_string()),
                };
            }
            "--oracle-path" => {
                i += 1;
                config.oracle_path = Some(std::path::PathBuf::from(
                    args.get(i).ok_or("--oracle-path needs a directory")?,
                ));
            }
            "--flightrec" => flightrec = true,
            "--flightrec-out" => {
                i += 1;
                flightrec = true;
                flightrec_out = Some(
                    args.get(i)
                        .ok_or("--flightrec-out needs a file path")?
                        .clone(),
                );
            }
            "--slo-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .ok_or("--slo-ms needs a value")?
                    .parse()
                    .map_err(|_| "--slo-ms must be an integer")?;
                if ms == 0 {
                    return Err("--slo-ms must be at least 1".to_string());
                }
                slo_ms = Some(ms);
            }
            "--slo-budget" => {
                i += 1;
                let b: f64 = args
                    .get(i)
                    .ok_or("--slo-budget needs a fraction")?
                    .parse()
                    .map_err(|_| "--slo-budget must be a number")?;
                if !(b > 0.0 && b <= 1.0) {
                    return Err("--slo-budget must be in (0, 1]".to_string());
                }
                slo_budget = Some(b);
            }
            "--slo-dump" => {
                i += 1;
                slo_dump = Some(args.get(i).ok_or("--slo-dump needs a file path")?.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    match slo_ms {
        Some(ms) => {
            let mut slo =
                star_rings::serve::SloConfig::with_target(std::time::Duration::from_millis(ms));
            if let Some(b) = slo_budget {
                slo.budget = b;
            }
            slo.dump_path = slo_dump.map(std::path::PathBuf::from);
            config.slo = Some(slo);
            // A breach snapshot is only useful if events are being
            // recorded — the watchdog implies the flight recorder.
            flightrec = true;
        }
        None if slo_budget.is_some() || slo_dump.is_some() => {
            return Err("--slo-budget/--slo-dump require --slo-ms".to_string());
        }
        None => {}
    }
    if flightrec {
        if let Some(path) = &flightrec_out {
            star_rings::obs::flightrec::set_dump_path(path);
        }
        star_rings::obs::flightrec::enable();
        star_rings::obs::flightrec::install_panic_hook();
    }
    star_rings::serve::run(config)?;
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    let mut config = star_rings::serve::LoadgenConfig::default();
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                config.addr = args.get(i).ok_or("--addr needs host:port")?.clone();
            }
            "--conns" => {
                i += 1;
                config.conns = args
                    .get(i)
                    .ok_or("--conns needs a count")?
                    .parse()
                    .map_err(|_| "--conns must be an integer")?;
                if config.conns == 0 {
                    return Err("--conns must be at least 1".to_string());
                }
            }
            "--rps" => {
                i += 1;
                config.rps = args
                    .get(i)
                    .ok_or("--rps needs a rate")?
                    .parse()
                    .map_err(|_| "--rps must be an integer (0 = unthrottled)")?;
            }
            "--duration" => {
                i += 1;
                let secs: f64 = args
                    .get(i)
                    .ok_or("--duration needs seconds")?
                    .parse()
                    .map_err(|_| "--duration must be a number of seconds")?;
                if !(0.0..=3600.0).contains(&secs) {
                    return Err("--duration must be in 0..=3600 seconds".to_string());
                }
                config.duration = std::time::Duration::from_secs_f64(secs);
            }
            "--mix" => {
                i += 1;
                config.mix =
                    star_rings::serve::Mix::parse(args.get(i).ok_or("--mix needs a value")?)?;
            }
            "--arrivals" => {
                i += 1;
                config.arrivals = star_rings::serve::Arrivals::parse(
                    args.get(i).ok_or("--arrivals needs a value")?,
                )?;
            }
            "--trace-out" => {
                i += 1;
                config.trace_out = Some(std::path::PathBuf::from(
                    args.get(i).ok_or("--trace-out needs a file path")?,
                ));
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?;
            }
            "--proto" => {
                i += 1;
                config.proto = star_rings::serve::WireProto::parse(
                    args.get(i).ok_or("--proto needs a value")?,
                )?;
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).ok_or("--out needs a file path")?.clone());
            }
            "--verify" => config.verify = true,
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    let report = star_rings::serve::loadgen::run(&config)?;
    eprint!("{}", report.render_summary());
    let json = report.to_baseline().to_json();
    match &out_path {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("loadgen: summary written to {path}");
        }
        None => print!("{json}"),
    }
    if report.protocol_errors > 0 {
        return Err(format!(
            "{} protocol errors during the run",
            report.protocol_errors
        ));
    }
    if report.cert_failures > 0 {
        return Err(format!(
            "{} certificate failures during the run",
            report.cert_failures
        ));
    }
    Ok(())
}

/// `obs-overhead [--n <n>] [--samples <k>] [--max-pct <p>]`: the tracing
/// cost gate. Embeds the same faulted scenario repeatedly, alternating
/// between observability off (flight recorder disabled, no trace id) and
/// on (flight recorder enabled, a trace id installed, one event recorded
/// per embed — the serving path's per-request instrumentation), and
/// compares the two medians. Interleaving cancels thermal/frequency
/// drift; the median shrugs off scheduler outliers. Exits nonzero when
/// the median overhead exceeds `--max-pct`.
fn cmd_obs_overhead(args: &[String]) -> Result<(), String> {
    let mut n = 8usize;
    let mut samples = 15usize;
    let mut max_pct = 5.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                n = args
                    .get(i)
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "--n must be an integer")?;
                if !(4..=10).contains(&n) {
                    return Err("--n must be in 4..=10".to_string());
                }
            }
            "--samples" => {
                i += 1;
                samples = args
                    .get(i)
                    .ok_or("--samples needs a count")?
                    .parse()
                    .map_err(|_| "--samples must be an integer")?;
                if samples == 0 {
                    return Err("--samples must be at least 1".to_string());
                }
            }
            "--max-pct" => {
                i += 1;
                max_pct = args
                    .get(i)
                    .ok_or("--max-pct needs a percentage")?
                    .parse()
                    .map_err(|_| "--max-pct must be a number")?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    let faults =
        gen::random_vertex_faults(n, n.saturating_sub(3), 0xB0B).map_err(|e| e.to_string())?;
    // The serving path canonicalizes every request before embedding, so
    // the probe does too — in BOTH arms (compute parity; the memo makes
    // repeats cheap either way). With the flight recorder enabled, the
    // canonicalizer's own `oracle.canon` events and counters are part of
    // the overhead under measurement, exactly as in a traced server.
    let canonicalizer = star_rings::oracle::Canonicalizer::default();
    let fault_ranks: Vec<u32> = faults.vertices().iter().map(Perm::rank).collect();
    let embed_once = |faults: &FaultSet| -> Result<std::time::Duration, String> {
        let t0 = std::time::Instant::now();
        let canon = canonicalizer.canonicalize(n, &fault_ranks);
        std::hint::black_box(canon.0.ranks().len());
        let ring = embed_longest_ring(n, faults).map_err(|e| e.to_string())?;
        let dt = t0.elapsed();
        std::hint::black_box(ring.len());
        Ok(dt)
    };
    // Warm the oracle cache and code paths so neither arm pays the
    // first-run cost.
    embed_once(&faults)?;
    embed_once(&faults)?;
    let mut plain_ns: Vec<u64> = Vec::with_capacity(samples);
    let mut traced_ns: Vec<u64> = Vec::with_capacity(samples);
    for s in 0..samples {
        star_rings::obs::flightrec::disable();
        plain_ns.push(embed_once(&faults)?.as_nanos() as u64);
        star_rings::obs::flightrec::enable();
        let dt = {
            let _guard = star_rings::obs::with_trace(0x0b5_0000 + s as u128);
            let dt = embed_once(&faults)?;
            star_rings::obs::flightrec::record(
                "overhead.probe",
                format!("sample {s}"),
                &[("n", star_rings::obs::FieldValue::U64(n as u64))],
            );
            dt
        };
        traced_ns.push(dt.as_nanos() as u64);
    }
    star_rings::obs::flightrec::disable();
    let median = |v: &mut Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let plain = median(&mut plain_ns);
    let traced = median(&mut traced_ns);
    let overhead_pct = if plain == 0 {
        0.0
    } else {
        (traced as f64 - plain as f64) / plain as f64 * 100.0
    };
    println!(
        "obs-overhead: n={n}, {samples} interleaved sample pairs\n\
         obs-overhead:   untraced median {:.3} ms\n\
         obs-overhead:   traced median   {:.3} ms (flight recorder + trace id)\n\
         obs-overhead:   median overhead {overhead_pct:+.2}% (bound {max_pct}%)",
        plain as f64 / 1e6,
        traced as f64 / 1e6,
    );
    if overhead_pct > max_pct {
        return Err(format!(
            "tracing overhead {overhead_pct:.2}% exceeds the {max_pct}% bound"
        ));
    }
    Ok(())
}

/// `oracle warm|stats|verify`: manage a persistent canonical embedding
/// store (see the `star-oracle` crate). `warm` embeds seeded scenarios
/// **in their canonical frame** and appends them, producing a directory
/// that can be shipped to servers and mounted with `serve
/// --oracle-path`; `stats` prints store counters; `verify` re-checks
/// every stored ring against `check_ring` at `n! - 2|F_v|`.
fn cmd_oracle(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("warm") => cmd_oracle_warm(&args[1..]),
        Some("stats") => cmd_oracle_stats(&args[1..]),
        Some("verify") => cmd_oracle_verify(&args[1..]),
        Some(other) => Err(format!(
            "unknown oracle subcommand `{other}` (warm|stats|verify)"
        )),
        None => Err("oracle needs a subcommand: warm | stats | verify".to_string()),
    }
}

/// Pulls the required `--path <dir>` plus any extra flags a subcommand
/// declares; unknown flags error.
fn parse_oracle_flags(
    args: &[String],
    mut extra: impl FnMut(&str, &str) -> Result<bool, String>,
) -> Result<std::path::PathBuf, String> {
    let mut path: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--path" {
            i += 1;
            path = Some(std::path::PathBuf::from(
                args.get(i).ok_or("--path needs a directory")?,
            ));
        } else {
            let value = args.get(i + 1).map(String::as_str).unwrap_or("");
            if extra(flag, value)? {
                i += 1;
            } else {
                return Err(format!("unknown option `{flag}`"));
            }
        }
        i += 1;
    }
    path.ok_or("--path <dir> is required".to_string())
}

fn cmd_oracle_warm(args: &[String]) -> Result<(), String> {
    let mut max_n = 7usize;
    let mut count = 32usize;
    let mut seed = 0u64;
    let path = parse_oracle_flags(args, |flag, value| match flag {
        "--n" => {
            max_n = value
                .parse()
                .map_err(|_| "--n must be an integer".to_string())?;
            if !(4..=9).contains(&max_n) {
                return Err("--n must be in 4..=9".to_string());
            }
            Ok(true)
        }
        "--count" => {
            count = value
                .parse()
                .map_err(|_| "--count must be an integer".to_string())?;
            if count == 0 {
                return Err("--count must be at least 1".to_string());
            }
            Ok(true)
        }
        "--seed" => {
            seed = value
                .parse()
                .map_err(|_| "--seed must be an integer".to_string())?;
            Ok(true)
        }
        _ => Ok(false),
    })?;
    let store = star_rings::oracle::Store::open(&path)
        .map_err(|e| format!("oracle store {}: {e}", path.display()))?;
    let t0 = std::time::Instant::now();
    let mut written = 0usize;
    let mut skipped = 0usize;
    for n in 4..=max_n {
        let budget = n.saturating_sub(3);
        let mut batch: Vec<(star_rings::oracle::OracleKey, Vec<u64>)> = Vec::new();
        for i in 0..count {
            // Cycle the fault budget so the store covers every |F_v|;
            // each scenario gets its own derived seed.
            let k = i % (budget + 1);
            let faults = gen::random_vertex_faults(n, k, seed ^ (n as u64) << 32 ^ i as u64)
                .map_err(|e| e.to_string())?;
            let ranks: Vec<u32> = faults.vertices().iter().map(Perm::rank).collect();
            let canon = star_rings::oracle::canonicalize(n, &ranks);
            let key = star_rings::oracle::OracleKey::new(&canon, 0, 0);
            if store.contains(&key) || batch.iter().any(|(k, _)| *k == key) {
                // Orbit-mates collapse onto one canonical record.
                skipped += 1;
                continue;
            }
            // Embed the canonical scenario directly: the stored ring is
            // already in the canonical frame, ready for witness map-back.
            let canon_faults = FaultSet::from_vertices(
                n,
                canon
                    .ranks()
                    .iter()
                    .map(|&r| Perm::unrank(n, r).expect("canonical ranks are valid"))
                    .collect::<Vec<_>>(),
            )
            .map_err(|e| e.to_string())?;
            let ring = embed_longest_ring(n, &canon_faults).map_err(|e| e.to_string())?;
            batch.push((key, star_rings::oracle::pack_ring(&ring.into_vertices())));
        }
        written += store
            .append_batch(&batch)
            .map_err(|e| format!("append n={n}: {e}"))?;
    }
    let stats = store.stats();
    println!(
        "oracle warm: {written} canonical records written, {skipped} orbit duplicates skipped \
         ({:.2}s)\noracle warm: store now holds {} records in {} segments ({} KiB) at {}",
        t0.elapsed().as_secs_f64(),
        stats.records,
        stats.segments,
        stats.bytes >> 10,
        path.display(),
    );
    Ok(())
}

fn cmd_oracle_stats(args: &[String]) -> Result<(), String> {
    let path = parse_oracle_flags(args, |_, _| Ok(false))?;
    let store = star_rings::oracle::Store::open(&path)
        .map_err(|e| format!("oracle store {}: {e}", path.display()))?;
    let stats = store.stats();
    println!(
        "oracle store {}\n\
         \x20 records:  {}\n\
         \x20 segments: {}\n\
         \x20 bytes:    {}\n\
         \x20 corrupt:  {}",
        path.display(),
        stats.records,
        stats.segments,
        stats.bytes,
        stats.corrupt,
    );
    Ok(())
}

fn cmd_oracle_verify(args: &[String]) -> Result<(), String> {
    let mut limit = 0usize;
    let path = parse_oracle_flags(args, |flag, value| match flag {
        "--limit" => {
            limit = value
                .parse()
                .map_err(|_| "--limit must be an integer (0 = all)".to_string())?;
            Ok(true)
        }
        _ => Ok(false),
    })?;
    let store = star_rings::oracle::Store::open(&path)
        .map_err(|e| format!("oracle store {}: {e}", path.display()))?;
    let t0 = std::time::Instant::now();
    let report = store.verify(limit);
    println!(
        "oracle verify: {} records checked, {} ok ({:.2}s)",
        report.checked,
        report.ok,
        t0.elapsed().as_secs_f64(),
    );
    for failure in &report.failures {
        eprintln!("oracle verify: FAIL {failure}");
    }
    if !report.all_ok() {
        return Err(format!(
            "{} of {} stored rings failed verification",
            report.failures.len(),
            report.checked
        ));
    }
    Ok(())
}

/// `audit [--n <max>] [--seeds <k>] [--soak <k>] [--fuzz <k>] [--out <f>]`:
/// the differential correctness gate. Exits nonzero on any mismatch, soak
/// violation, or fuzz-invariant failure.
fn cmd_audit(args: &[String]) -> Result<(), String> {
    let mut config = star_rings::verify::audit::AuditConfig::default();
    let mut soak = 200usize;
    let mut fuzz_iters = 96usize;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                config.max_n = args
                    .get(i)
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|_| "--n must be an integer")?;
                if !(4..=6).contains(&config.max_n) {
                    return Err("--n must be in 4..=6 (the oracle-checkable range)".to_string());
                }
            }
            "--seeds" => {
                i += 1;
                config.seeds = args
                    .get(i)
                    .ok_or("--seeds needs a count")?
                    .parse()
                    .map_err(|_| "--seeds must be an integer")?;
            }
            "--soak" => {
                i += 1;
                soak = args
                    .get(i)
                    .ok_or("--soak needs a count")?
                    .parse()
                    .map_err(|_| "--soak must be an integer (0 disables)")?;
            }
            "--fuzz" => {
                i += 1;
                fuzz_iters = args
                    .get(i)
                    .ok_or("--fuzz needs a count")?
                    .parse()
                    .map_err(|_| "--fuzz must be an integer (0 disables)")?;
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).ok_or("--out needs a file path")?.clone());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }

    let mut failures: Vec<String> = Vec::new();
    let mut cases: Vec<star_rings::bench::baseline::BaselineCase> = Vec::new();

    // 1. Differential sweep.
    let t0 = std::time::Instant::now();
    let report = star_rings::verify::audit::run(&config);
    eprintln!(
        "audit: differential sweep — {} scenarios across n=4..={}, {} mismatches ({:.2}s)",
        report.scenarios(),
        config.max_n,
        report.mismatches.len(),
        t0.elapsed().as_secs_f64()
    );
    for c in &report.cases {
        eprintln!(
            "  n={}: {} scenarios, {} oracle-checked, {} certificates, median {:.1} us, p95 {:.1} us",
            c.n,
            c.scenarios,
            c.oracle_checked,
            c.certificates,
            c.median_ns as f64 / 1e3,
            c.p95_ns as f64 / 1e3
        );
        cases.push(star_rings::bench::baseline::BaselineCase {
            name: format!("audit/differential/n{}", c.n),
            n: c.n,
            mode: "audit".to_string(),
            samples: c.scenarios,
            median_ns: c.median_ns,
            p95_ns: c.p95_ns,
            oracle_hit_rate: 1.0,
            pool_items_per_worker: 0.0,
            per_conn_rate: 0.0,
        });
    }
    failures.extend(
        report
            .mismatches
            .iter()
            .map(|m| format!("differential: {m}")),
    );

    // 2. Chaos soak through MaintainedRing::fail.
    if soak > 0 {
        let t0 = std::time::Instant::now();
        let (mismatches, (local, global, refused)) =
            star_rings::verify::audit::soak_repairs(6, soak, 0xC0FFEE);
        let dt = t0.elapsed();
        eprintln!(
            "audit: chaos soak — {soak} injections at n=6 ({local} local, {global} global, \
             {refused} refused), {} violations ({:.2}s)",
            mismatches.len(),
            dt.as_secs_f64()
        );
        cases.push(star_rings::bench::baseline::BaselineCase {
            name: "audit/soak/n6".to_string(),
            n: 6,
            mode: "audit".to_string(),
            samples: soak,
            median_ns: (dt.as_nanos() as u64) / soak.max(1) as u64,
            p95_ns: (dt.as_nanos() as u64) / soak.max(1) as u64,
            oracle_hit_rate: 1.0,
            pool_items_per_worker: 0.0,
            per_conn_rate: 0.0,
        });
        failures.extend(mismatches.iter().map(|m| format!("soak: {m}")));
    }

    // 3. Wire-protocol fuzz smoke against an in-process server.
    if fuzz_iters > 0 {
        failures.extend(audit_fuzz_smoke(fuzz_iters)?);
    }

    if let Some(path) = &out_path {
        let baseline = star_rings::bench::baseline::Baseline {
            created_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            cases,
        };
        std::fs::write(path, baseline.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("audit: timing summary written to {path}");
    }

    if failures.is_empty() {
        println!("audit PASS");
        Ok(())
    } else {
        for f in &failures {
            eprintln!("audit FAIL: {f}");
        }
        Err(format!("audit found {} failure(s)", failures.len()))
    }
}

/// Boots a throwaway server on a free port, fuzzes its wire protocol, and
/// shuts it down. Returns the list of crash-free-invariant violations.
fn audit_fuzz_smoke(iterations: usize) -> Result<Vec<String>, String> {
    // Probe a free port, release it, and bind the server there. The
    // window between release and rebind is ours alone in practice (the
    // kernel does not reissue the ephemeral port immediately).
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
        probe.local_addr().map_err(|e| e.to_string())?.to_string()
    };
    let config = star_rings::serve::ServeConfig {
        addr: addr.clone(),
        ..Default::default()
    };
    let server = std::thread::spawn(move || star_rings::serve::run(config));
    // Wait for the socket to accept.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if std::net::TcpStream::connect(&addr).is_ok() {
            break;
        }
        if std::time::Instant::now() > deadline {
            star_rings::serve::request_shutdown();
            let _ = server.join();
            return Err("audit: fuzz server did not come up within 10s".to_string());
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let result = star_rings::serve::fuzz::run(&star_rings::serve::fuzz::FuzzConfig {
        addr,
        iterations,
        seed: 0xF422,
    });
    star_rings::serve::request_shutdown();
    match server.join() {
        Ok(Ok(_)) => {}
        Ok(Err(e)) => return Err(format!("audit: fuzz server failed: {e}")),
        Err(_) => return Err("audit: fuzz server panicked".to_string()),
    }
    let report = result?;
    eprintln!(
        "audit: protocol fuzz — {} hostile frames ({} error responses, {} hangups), \
         {} invariant violations",
        report.sent,
        report.error_responses,
        report.hangups,
        report.failures.len()
    );
    Ok(report
        .failures
        .iter()
        .map(|f| format!("fuzz: {f}"))
        .collect())
}

fn cmd_degrade(args: &[String]) -> Result<(), String> {
    let n = parse_n(args)?;
    let mut failures = n.saturating_sub(3);
    let mut seed = 0u64;
    let rest = &args[1..];
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--failures" => {
                i += 1;
                failures = rest
                    .get(i)
                    .ok_or("--failures needs a count")?
                    .parse()
                    .map_err(|_| "--failures must be an integer")?;
            }
            "--seed" => {
                i += 1;
                seed = rest
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if failures > n.saturating_sub(3) {
        return Err(format!("at most n-3 = {} failures supported", n - 3));
    }
    let seq: Vec<Perm> = gen::random_vertex_faults(n, failures, seed)
        .map_err(|e| e.to_string())?
        .vertices()
        .to_vec();
    let timeline = degrade(n, &seq).map_err(|e| e.to_string())?;
    println!("boot: ring of {}", factorial(n));
    for step in &timeline.steps {
        println!(
            "fail {} -> ring {} (repair {:.2} ms, {:.1}% edges kept)",
            step.failed,
            step.ring_len,
            step.reembed_time.as_secs_f64() * 1e3,
            100.0 * step.edge_survival
        );
    }
    Ok(())
}
